//! FTL-invariant property tests: for every mapping scheme — page map,
//! DFTL, and the hybrid log-block FTL — random write/trim/read sequences
//! must preserve:
//!
//! 1. **No lost writes** — after quiescing, a written (and not-trimmed)
//!    logical page is mapped and its read completes; a trimmed or
//!    never-written page is unmapped (zero-fill read).
//! 2. **Live-mapping bijectivity** — no two logical pages map to the same
//!    physical page.
//! 3. **Valid targets** — every `lookup` hit resolves to a physical page
//!    the flash array holds in the `Valid` state.
//!
//! The same generator drives all three schemes (plus cross-structure
//! `Controller::check_invariants`), so a regression in any scheme's
//! bookkeeping — easy to introduce with multi-step merge machinery — fails
//! here first.

use std::collections::{BTreeMap, BTreeSet};

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RequestKind,
    SsdRequest, WlConfig,
};
use eagletree_core::SimTime;
use eagletree_flash::{Geometry, PageState, TimingSpec};
use proptest::prelude::*;

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
        id
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }
}

/// One step of the generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

/// The three mapping schemes under the same generator.
fn schemes() -> Vec<(&'static str, MappingKind)> {
    vec![
        ("page_map", MappingKind::PageMap),
        ("dftl", MappingKind::Dftl { cmt_entries: 24 }),
        (
            "hybrid",
            MappingKind::Hybrid {
                log_blocks: 3,
                merge: MergePolicy::Fifo,
            },
        ),
    ]
}

fn build(mapping: MappingKind) -> Driver {
    let cfg = ControllerConfig {
        mapping,
        // Keep static WL on for the hybrid refresh-merge path; it is
        // deterministic and exercises more machinery.
        wl: WlConfig {
            check_every_erases: 16,
            young_delta: 4,
            idle_factor: 0.5,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    };
    Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap())
}

/// Drive `ops` in windows, tracking the model state; then check all three
/// invariant families at the quiescent point.
fn check_scheme(name: &str, mapping: MappingKind, ops: &[Op], qd: usize) -> Result<(), TestCaseError> {
    let mut d = build(mapping);
    let logical = d.c.logical_pages();
    // Model: the set of logical pages whose last operation was a write.
    let mut written: BTreeSet<u64> = BTreeSet::new();
    let mut read_ids: Vec<u64> = Vec::new();
    for chunk in ops.chunks(qd) {
        for op in chunk {
            match *op {
                Op::Write(l) => {
                    d.submit(RequestKind::Write, l % logical);
                }
                Op::Trim(l) => {
                    d.submit(RequestKind::Trim, l % logical);
                }
                Op::Read(l) => {
                    read_ids.push(d.submit(RequestKind::Read, l % logical));
                }
            }
        }
        // Model semantics per window: trims complete instantly at submit,
        // writes commit by the end of the window — so within one window a
        // write of an lpn always outlives a trim of it.
        for op in chunk {
            if let Op::Trim(l) = *op {
                written.remove(&(l % logical));
            }
        }
        for op in chunk {
            if let Op::Write(l) = *op {
                written.insert(l % logical);
            }
        }
        // Window boundary: quiesce so the model set is exact.
        d.run();
    }
    d.run();

    // Every submitted request completed.
    let done_ids: BTreeSet<u64> = d.done.iter().map(|c| c.id).collect();
    prop_assert_eq!(
        done_ids.len() as u64,
        d.next_id,
        "{}: lost completions",
        name
    );
    for id in &read_ids {
        prop_assert!(done_ids.contains(id), "{}: read {} never completed", name, id);
    }

    // 1. No lost writes: model and mapping agree page by page.
    for lpn in 0..logical {
        let mapped = d.c.peek_mapping(lpn);
        if written.contains(&lpn) {
            prop_assert!(
                mapped.is_some(),
                "{}: lpn {} written but unmapped (lost write)",
                name,
                lpn
            );
        } else {
            prop_assert!(
                mapped.is_none(),
                "{}: lpn {} trimmed/unwritten but mapped to {:?}",
                name,
                lpn,
                mapped
            );
        }
    }

    // 2. Bijectivity: no two logical pages share a physical page.
    let mut owners: BTreeMap<u64, u64> = BTreeMap::new();
    for lpn in 0..logical {
        if let Some(ppn) = d.c.peek_mapping(lpn) {
            if let Some(prev) = owners.insert(ppn, lpn) {
                return Err(TestCaseError::fail(format!(
                    "{name}: lpns {prev} and {lpn} both map to ppn {ppn}"
                )));
            }
        }
    }

    // 3. Every mapping hit targets a Valid flash page.
    let g = *d.c.array().geometry();
    for lpn in 0..logical {
        if let Some(ppn) = d.c.peek_mapping(lpn) {
            let state = d.c.array().page_state(g.page_at(ppn));
            prop_assert_eq!(
                state,
                PageState::Valid,
                "{}: lpn {} maps to a {:?} page",
                name,
                lpn,
                state
            );
        }
    }

    // Cross-structure invariants (reverse map, allocator accounting, and
    // the hybrid block-mapping discipline).
    d.c.check_invariants();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Uniformly random ops over the whole space.
    #[test]
    fn random_ops_preserve_invariants(
        ops in prop::collection::vec(
            prop_oneof![
                5 => (0u64..4096).prop_map(Op::Write),
                1 => (0u64..4096).prop_map(Op::Trim),
                2 => (0u64..4096).prop_map(Op::Read),
            ],
            200..600,
        ),
        qd in 1usize..32,
    ) {
        for (name, mapping) in schemes() {
            check_scheme(name, mapping, &ops, qd)?;
        }
    }

    /// Clustered ops (small hot range) — drives overwrites, GC and merges
    /// much harder than uniform traffic.
    #[test]
    fn clustered_overwrites_preserve_invariants(
        ops in prop::collection::vec(
            prop_oneof![
                8 => (0u64..96).prop_map(Op::Write),
                1 => (0u64..96).prop_map(Op::Trim),
                2 => (0u64..96).prop_map(Op::Read),
            ],
            400..800,
        ),
        qd in 1usize..24,
    ) {
        for (name, mapping) in schemes() {
            check_scheme(name, mapping, &ops, qd)?;
        }
    }

    /// Sequential runs with random restarts — the hybrid switch/partial
    /// merge paths live here.
    #[test]
    fn sequential_runs_preserve_invariants(
        seeds in prop::collection::vec(0u64..(128 * 40), 6..20),
        qd in 1usize..32,
    ) {
        // Each seed encodes a (start, len) run; the shim has no tuple
        // strategies.
        let ops: Vec<Op> = seeds
            .iter()
            .flat_map(|&s| {
                let start = s % 128;
                let len = 1 + s / 128;
                (start..start + len).map(Op::Write)
            })
            .collect();
        for (name, mapping) in schemes() {
            check_scheme(name, mapping, &ops, qd)?;
        }
    }
}
