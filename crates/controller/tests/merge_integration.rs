//! Merge-machinery integration tests: the hybrid log-block FTL's merge
//! traffic must flow through the controller scheduler as internal ops
//! (visible per `OpClass`), not bypass it.

use eagletree_controller::{
    class_index, Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy,
    OpClass, RequestKind, SchedPolicy, SsdRequest, WlConfig,
};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{Geometry, TimingSpec};

/// A minimal OS stand-in: submits requests and drains the event agenda.
struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
        id
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }

    fn submit_windowed(&mut self, reqs: &[(RequestKind, u64)], qd: usize) {
        for chunk in reqs.chunks(qd) {
            for &(kind, lpn) in chunk {
                self.submit(kind, lpn);
            }
            self.run();
        }
    }
}

fn hybrid_cfg(log_blocks: usize, merge: MergePolicy) -> ControllerConfig {
    ControllerConfig {
        mapping: MappingKind::Hybrid { log_blocks, merge },
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    }
}

fn hybrid_driver(log_blocks: usize, merge: MergePolicy) -> Driver {
    Driver::new(
        Controller::new(Geometry::tiny(), TimingSpec::slc(), hybrid_cfg(log_blocks, merge))
            .unwrap(),
    )
}

#[test]
fn sequential_fill_switch_merges_with_unit_wa() {
    let mut d = hybrid_driver(4, MergePolicy::Fifo);
    let ppb = Geometry::tiny().pages_per_block as u64;
    let n = (d.c.logical_pages() / ppb) * ppb / 2; // whole logical blocks
    let reqs: Vec<_> = (0..n).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&reqs, 16);
    assert_eq!(d.c.stats().app_writes_completed, n);
    let m = d.c.merge_counters();
    assert_eq!(
        m.switch_merges,
        n / ppb,
        "every filled logical block should switch for free"
    );
    assert_eq!(m.moves, 0, "sequential fill must copy nothing");
    assert!(
        (d.c.write_amplification() - 1.0).abs() < 1e-9,
        "switch merges are free: WA {}",
        d.c.write_amplification()
    );
    d.c.check_invariants();
}

#[test]
fn log_exhaustion_full_merges_through_the_scheduler() {
    let mut d = hybrid_driver(3, MergePolicy::Fifo);
    let logical = d.c.logical_pages();
    // Fill, then overwrite randomly until well past log exhaustion.
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    let mut rng = SimRng::new(0xFA57);
    let over: Vec<_> = (0..logical * 2)
        .map(|_| (RequestKind::Write, 1 + rng.gen_range(logical - 1)))
        .collect();
    d.submit_windowed(&over, 16);
    assert_eq!(d.c.stats().app_writes_completed, logical + logical * 2);

    let m = d.c.merge_counters();
    assert!(m.full_merges > 0, "random overwrite must force full merges");
    assert!(m.moves > 0, "full merges must copy live pages");
    assert!(m.erases > 0, "merges must erase retired blocks");

    // The merge traffic went through the scheduler: its op classes were
    // issued (and waited in the queue like everyone else)…
    let st = d.c.stats();
    assert!(st.issued[class_index(OpClass::MergeRead)] > 0);
    assert!(st.issued[class_index(OpClass::MergeWrite)] > 0);
    assert!(st.issued[class_index(OpClass::Erase)] > 0);
    // …and no generic GC ran: merges are the hybrid scheme's reclamation.
    assert_eq!(st.gc_erases, 0);
    assert_eq!(st.issued[class_index(OpClass::GcRead)], 0);

    // Every flash program is accounted to a scheduled class: application
    // writes plus merge/WL copies and fillers — nothing bypassed the
    // scheduler. (Reads of merge sources are issued ops too, but trimmed
    // reroutes make read counts a superset, so check programs exactly.)
    let programs = d.c.array().counters().programs;
    let scheduled = st.app_writes_completed + m.moves + m.stale + m.fillers + st.wl_moves;
    assert_eq!(
        programs, scheduled,
        "programs not accounted to scheduled ops"
    );
    assert!(
        d.c.write_amplification() > 1.0,
        "full merges must amplify writes"
    );
    d.c.check_invariants();
}

#[test]
fn merges_compete_with_reads_under_class_priority() {
    // Same overwrite-then-read workload under reads-first vs merges
    // implicitly first (internal_first): reads should wait less when the
    // policy prioritizes them over merge traffic.
    let read_wait = |policy: SchedPolicy| {
        let cfg = ControllerConfig {
            sched: policy,
            ..hybrid_cfg(2, MergePolicy::Fifo)
        };
        let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
        let logical = d.c.logical_pages();
        let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&fill, 16);
        let mut rng = SimRng::new(7);
        let mixed: Vec<_> = (0..logical)
            .map(|i| {
                if i % 4 == 0 {
                    (RequestKind::Read, rng.gen_range(logical))
                } else {
                    (RequestKind::Write, 1 + rng.gen_range(logical - 1))
                }
            })
            .collect();
        d.submit_windowed(&mixed, 48);
        d.c.stats().wait_us[class_index(OpClass::AppRead)].mean()
    };
    let rf = read_wait(SchedPolicy::reads_first());
    let internal = read_wait(SchedPolicy::internal_first());
    assert!(
        rf < internal,
        "reads-first should cut read wait under merge load ({rf:.1}us vs {internal:.1}us)"
    );
}

#[test]
fn min_valid_policy_completes_and_merges() {
    let mut d = hybrid_driver(3, MergePolicy::MinValid);
    let logical = d.c.logical_pages();
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    let mut rng = SimRng::new(3);
    let over: Vec<_> = (0..logical)
        .map(|_| (RequestKind::Write, 1 + rng.gen_range(logical - 1)))
        .collect();
    d.submit_windowed(&over, 16);
    assert_eq!(d.c.stats().app_writes_completed, logical * 2);
    assert!(d.c.merge_counters().full_merges > 0);
    d.c.check_invariants();
}

#[test]
fn trims_shrink_merge_work() {
    let mut d = hybrid_driver(2, MergePolicy::Fifo);
    let logical = d.c.logical_pages();
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    // Trim most of the space, then overwrite the remainder.
    let trims: Vec<_> = (logical / 4..logical).map(|l| (RequestKind::Trim, l)).collect();
    d.submit_windowed(&trims, 64);
    let mut rng = SimRng::new(9);
    let over: Vec<_> = (0..logical)
        .map(|_| (RequestKind::Write, 1 + rng.gen_range(logical / 4 - 1)))
        .collect();
    d.submit_windowed(&over, 16);
    assert!(d.c.merge_counters().full_merges > 0);
    d.c.check_invariants();
}

#[test]
fn static_wl_refreshes_cold_data_blocks_via_merges() {
    let cfg = ControllerConfig {
        wl: WlConfig {
            static_enabled: true,
            check_every_erases: 8,
            young_delta: 4,
            idle_factor: 0.1,
            dynamic_enabled: false,
        },
        ..hybrid_cfg(3, MergePolicy::Fifo)
    };
    let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
    let logical = d.c.logical_pages();
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    // Hammer a small hot range so cold data blocks pin young blocks.
    let hot = logical / 8;
    let mut rng = SimRng::new(23);
    let over: Vec<_> = (0..logical * 4)
        .map(|_| (RequestKind::Write, 1 + rng.gen_range(hot)))
        .collect();
    d.submit_windowed(&over, 16);
    let m = d.c.merge_counters();
    assert!(
        m.refresh_merges > 0,
        "static WL should refresh cold data blocks under skewed wear"
    );
    assert!(d.c.stats().wl_moves > 0, "refresh merges move data");
    assert!(d.c.stats().wl_erases > 0);
    d.c.check_invariants();
}

#[test]
fn write_buffer_flushes_through_the_log_blocks() {
    // Buffered writes complete in RAM and flush in the background; under
    // the hybrid mapping those flushes must follow the log-block
    // discipline (including discarded stale flushes).
    let cfg = ControllerConfig {
        write_buffer_pages: 8,
        ..hybrid_cfg(3, MergePolicy::Fifo)
    };
    let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(0xBF);
    // Skewed overwrites so buffered pages are re-dirtied mid-flush.
    let reqs: Vec<_> = (0..logical)
        .map(|_| (RequestKind::Write, 1 + rng.gen_range(64)))
        .collect();
    d.submit_windowed(&reqs, 16);
    assert_eq!(d.c.stats().app_writes_completed, logical);
    // Everything written is durable in buffer or flash.
    for lpn in 1..=64 {
        assert!(
            d.c.is_buffered(lpn) || d.c.peek_mapping(lpn).is_some(),
            "lpn {lpn} lost between buffer and flash"
        );
    }
    d.c.check_invariants();
}

#[test]
fn hybrid_budget_must_fit_spare_blocks() {
    let err = Controller::new(
        Geometry::tiny(),
        TimingSpec::slc(),
        hybrid_cfg(1000, MergePolicy::Fifo),
    );
    assert!(err.is_err(), "oversized log budget must be rejected");
}

#[test]
fn hybrid_ram_footprint_beats_page_map() {
    let hybrid = Controller::new(
        Geometry::tiny(),
        TimingSpec::slc(),
        hybrid_cfg(4, MergePolicy::Fifo),
    )
    .unwrap();
    let page_map =
        Controller::new(Geometry::tiny(), TimingSpec::slc(), ControllerConfig::default())
            .unwrap();
    let h = hybrid
        .memory()
        .reserved_for(eagletree_flash::MemoryKind::Ram, "mapping")
        .unwrap();
    let p = page_map
        .memory()
        .reserved_for(eagletree_flash::MemoryKind::Ram, "mapping")
        .unwrap();
    assert!(
        h * 4 < p,
        "hybrid mapping RAM ({h} B) should be far below page map ({p} B)"
    );
}
