//! Media-fault property suite: the controller under an injected-fault
//! flash array.
//!
//! Three families of guarantees:
//!
//! * **Determinism.** The fault model draws from per-op hashes, not a
//!   shared RNG stream: a fixed-seed faulty run is byte-identical across
//!   repeats and across both agenda backends, exactly like a fault-free
//!   one. (`FAULTS=on` widens the matrix to every scheme × policy — the
//!   CI fault-matrix job sets it.)
//! * **No silent loss.** Every acknowledged write either remains mapped
//!   to a valid page or its logical page appears in the controller's
//!   lost-data ledger. Program failures remap in flight; uncorrectable
//!   reads are ledgered — nothing just vanishes.
//! * **Structural invariants.** `check_invariants` holds after heavy
//!   churn with failures injected, for every mapping scheme, and across
//!   a power-cut + remount of a medium that already carries grown bad
//!   blocks (the wear-out × recovery composition).

use std::collections::{BTreeMap, BTreeSet};

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RecoveryMode,
    RequestKind, SchedPolicy, ScrubConfig, SsdRequest,
};
use eagletree_core::{QueueKind, SimRng, SimTime};
use eagletree_flash::{FaultConfig, Geometry, PageState, TimingSpec};

/// Widen sweeps when the CI fault-matrix job sets `FAULTS=on`.
fn full_matrix() -> bool {
    std::env::var("FAULTS").is_ok_and(|v| v == "on")
}

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
    writes: BTreeMap<u64, u64>,
    acked: BTreeSet<u64>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
            writes: BTreeMap::new(),
            acked: BTreeSet::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64, tags: IoTags) {
        let id = self.next_id;
        self.next_id += 1;
        if kind == RequestKind::Write {
            self.writes.insert(id, lpn);
        }
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags,
            },
            self.now,
        );
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            for comp in self.c.advance(t) {
                if let Some(&lpn) = self.writes.get(&comp.id) {
                    self.acked.insert(lpn);
                }
                self.done.push(comp);
            }
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }
}

/// A fault profile hot enough that a 2k-op run on the tiny array sees
/// program failures, transient and retiring erase failures, ECC retries
/// and the odd uncorrectable read — without starving the free pool.
fn test_faults() -> FaultConfig {
    FaultConfig {
        program_fail_base: 0.01,
        erase_fail_base: 0.15,
        raw_bits_base: 4.0,
        raw_bits_per_disturb: 0.05,
        ecc_bits: 6,
        read_retries: 2,
        ..FaultConfig::default()
    }
}

/// Mild read-error curve for the remount test: the mount-time OOB probe
/// has no retry ladder, so `raw_bits_base` close to the ECC strength
/// would shed a tenth of the mappings at scan time (by design — but this
/// test asserts survival, so it keeps reads clean and makes programs and
/// erases hostile instead).
fn remount_faults() -> FaultConfig {
    FaultConfig {
        program_fail_base: 0.02,
        erase_fail_base: 0.15,
        raw_bits_base: 1.0,
        ..FaultConfig::default()
    }
}

fn faulty_cfg(mapping: MappingKind, sched: SchedPolicy, queue: QueueKind) -> ControllerConfig {
    ControllerConfig {
        mapping,
        sched,
        queue,
        fault: Some(test_faults()),
        scrub: Some(ScrubConfig {
            check_every_ops: 128,
            read_disturb_threshold: 8,
            retention_threshold_s: 0.05,
            max_inflight: 1,
        }),
        trace_events: 512,
        ..ControllerConfig::default()
    }
}

/// Fixed-seed workload against a faulty array: fill the device once
/// sequentially, then hammer a hot quarter of the space with mixed
/// writes/reads — the fill puts GC (and hence erases) on the critical
/// path, so every fault domain actually gets exercised. Returns the
/// driver for property checks.
fn churn(cfg: ControllerConfig, ops: usize) -> Driver {
    let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(0xFA01_77E5);
    let hot = (logical / 4).max(1);
    let script: Vec<(RequestKind, u64, IoTags)> = (0..logical)
        .map(|lpn| (RequestKind::Write, lpn, IoTags::none()))
        .chain((0..ops).map(|i| {
            let lpn = rng.gen_range(hot);
            let tags = if i % 5 == 0 {
                IoTags::none().with_priority((i % 3) as u8)
            } else {
                IoTags::none()
            };
            // Writes + reads only: a trim legitimately unmaps its page,
            // which would muddy the acked-write survival property.
            match i % 10 {
                0..=6 => (RequestKind::Write, lpn, tags),
                _ => (RequestKind::Read, lpn, tags),
            }
        }))
        .collect();
    for chunk in script.chunks(96) {
        for &(kind, lpn, tags) in chunk {
            d.submit(kind, lpn, tags);
        }
        d.run();
    }
    d.run();
    d
}

/// Everything observable, rendered to one string (the determinism
/// fingerprint), reliability counters included.
fn fingerprint(d: &Driver) -> String {
    let mut out = String::new();
    for c in &d.done {
        out.push_str(&format!("{}@{}\n", c.id, c.at.as_nanos()));
    }
    out.push_str(&format!("{:?}\n", d.c.stats()));
    out.push_str(&format!("{:?}\n", d.c.merge_counters()));
    out.push_str(&format!("{:?}\n", d.c.array().counters()));
    out.push_str(&format!("{:?}\n", d.c.reliability()));
    if let Some(trace) = d.c.trace() {
        out.push_str(&trace.render_listing());
    }
    out
}

fn schemes() -> Vec<MappingKind> {
    vec![
        MappingKind::PageMap,
        MappingKind::Dftl { cmt_entries: 24 },
        MappingKind::Hybrid {
            log_blocks: 3,
            merge: MergePolicy::Fifo,
        },
    ]
}

fn policies() -> Vec<(&'static str, SchedPolicy)> {
    vec![
        ("fifo", SchedPolicy::Fifo),
        ("class_priority", SchedPolicy::reads_first()),
        ("edf", SchedPolicy::edf_default()),
        ("fair", SchedPolicy::fair_equal()),
        ("tag_priority", SchedPolicy::TagPriority),
    ]
}

#[test]
fn faulty_runs_are_byte_identical_across_repeats_and_agendas() {
    for mapping in schemes() {
        let pols = if full_matrix() {
            policies()
        } else {
            vec![policies().remove(0)]
        };
        for (name, policy) in pols {
            let heap_a = fingerprint(&churn(
                faulty_cfg(mapping, policy.clone(), QueueKind::Heap),
                2000,
            ));
            let heap_b = fingerprint(&churn(
                faulty_cfg(mapping, policy.clone(), QueueKind::Heap),
                2000,
            ));
            assert!(
                heap_a == heap_b,
                "{mapping:?}/{name}: faulty fingerprints diverged across repeats"
            );
            let cal = fingerprint(&churn(
                faulty_cfg(mapping, policy, QueueKind::Calendar),
                2000,
            ));
            assert!(
                heap_a == cal,
                "{mapping:?}/{name}: faulty calendar agenda diverged from heap"
            );
        }
    }
}

#[test]
fn faults_actually_fired_and_reliability_reports_them() {
    let d = churn(
        faulty_cfg(MappingKind::PageMap, SchedPolicy::Fifo, QueueKind::Heap),
        2000,
    );
    let rel = d.c.reliability().expect("fault model installed");
    assert!(rel.reads_sampled > 0);
    assert!(rel.corrected_bits > 0, "error curve never produced raw bits");
    assert!(rel.read_retries > 0, "ECC never needed a retry: {rel:?}");
    assert!(rel.program_fails > 0, "no program failures injected: {rel:?}");
    assert_eq!(
        rel.program_remaps, rel.program_fails,
        "every program failure must be remapped (none absorbed on the app path)"
    );
    assert!(rel.erase_fails > 0, "no erase failures injected: {rel:?}");
    assert!(rel.uber >= 0.0 && rel.uber.is_finite());
    // Scrubbing ran against the disturb the read-heavy mix built up.
    assert!(rel.scrub_refreshes > 0, "scrubber never refreshed: {rel:?}");
}

#[test]
fn no_acknowledged_write_is_lost_without_a_ledger_entry() {
    for mapping in schemes() {
        let d = churn(
            faulty_cfg(mapping, SchedPolicy::Fifo, QueueKind::Heap),
            2000,
        );
        let lost: BTreeSet<u64> = d.c.lost_data().collect();
        let g = *d.c.array().geometry();
        let mut verified = 0u64;
        for &lpn in &d.acked {
            let survives = d.c.peek_mapping(lpn).is_some_and(|ppn| {
                d.c.array().page_state(g.page_at(ppn)) == PageState::Valid
            });
            assert!(
                survives || lost.contains(&lpn),
                "{mapping:?}: acked lpn {lpn} neither mapped-valid nor ledgered"
            );
            if survives {
                verified += 1;
            }
        }
        assert!(verified > 0, "{mapping:?}: nothing verified");
        // The ledger only ever names logical pages the device actually
        // served — it cannot invent losses.
        let logical = d.c.logical_pages();
        for &lpn in &lost {
            assert!(lpn < logical, "{mapping:?}: ledgered out-of-range lpn {lpn}");
        }
    }
}

#[test]
fn ftl_invariants_hold_under_injected_failures() {
    for mapping in schemes() {
        let d = churn(
            faulty_cfg(mapping, SchedPolicy::Fifo, QueueKind::Heap),
            2000,
        );
        d.c.check_invariants();
        let rel = d.c.reliability().unwrap();
        assert!(
            rel.program_fails + rel.erase_fails > 0,
            "{mapping:?}: the invariant check never saw a fault"
        );
    }
}

#[test]
fn remount_tolerates_grown_bad_blocks() {
    // Satellite wear-out × recovery composition: churn a faulty device
    // until blocks have actually been retired as grown bad, cut power,
    // and remount the scarred medium under both recovery modes.
    for mode in [RecoveryMode::FullScan, RecoveryMode::Checkpoint] {
        let cfg = ControllerConfig {
            checkpoint_interval_programs: 128,
            fault: Some(remount_faults()),
            ..faulty_cfg(MappingKind::PageMap, SchedPolicy::Fifo, QueueKind::Heap)
        };
        let mut d = churn(cfg.clone(), 2500);
        let rel = d.c.reliability().unwrap();
        assert!(
            rel.grown_bad_blocks > 0,
            "churn must retire blocks before the cut: {rel:?}"
        );
        let acked = std::mem::take(&mut d.acked);
        let pre_lost: BTreeSet<u64> = d.c.lost_data().collect();
        let image = d.c.power_cut(d.now);
        let (c2, rep) = Controller::remount(image, cfg, mode).expect("remount scarred medium");
        c2.check_invariants();
        // The wear scars survive the remount.
        let rel2 = c2.reliability().expect("fault model carried across");
        assert_eq!(rel2.grown_bad_blocks, rel.grown_bad_blocks);
        // Acked writes still survive (or were already ledgered pre-cut).
        let g = *c2.array().geometry();
        for &lpn in &acked {
            let survives = c2.peek_mapping(lpn).is_some_and(|ppn| {
                let addr = g.page_at(ppn);
                c2.array().page_state(addr) == PageState::Valid && !c2.array().is_torn(addr)
            });
            assert!(
                survives || pre_lost.contains(&lpn),
                "{mode:?}: acked lpn {lpn} lost across remount of scarred medium"
            );
        }
        // The report is coherent; uncorrectable OOB reads (if any) were
        // skipped, not fatal.
        assert!(rep.oob_scanned > 0);
        assert!(rep.mount_time.as_nanos() > 0);
    }
}

#[test]
fn disabled_fault_model_reports_nothing() {
    let cfg = ControllerConfig {
        trace_events: 0,
        ..ControllerConfig::default()
    };
    let d = churn(cfg, 500);
    assert!(d.c.reliability().is_none());
    assert_eq!(d.c.lost_data().count(), 0);
    assert!(d.c.array().fault().is_none());
}
