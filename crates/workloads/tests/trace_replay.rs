//! End-to-end tests of the production trace pipeline: CSV ingestion,
//! bounded-memory streaming, open-/closed-loop replay against a real OS +
//! controller stack, and the determinism guarantees the experiment suite
//! leans on.

use std::io::BufReader;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eagletree_controller::{Controller, ControllerConfig};
use eagletree_core::{BlkOp, BlkRecord, QueueKind, SimDuration};
use eagletree_flash::{Geometry, TimingSpec};
use eagletree_os::{CompletedIo, Os, OsConfig, OsIo, ThreadCtx, Workload};
use eagletree_workloads::{
    characterize, to_msr_csv_line, ChunkedSource, MsrCsvSource, Remap, ReplayThread, SynthCsv,
    SynthShape, SyntheticTrace, TraceEntry, TraceSource, TraceThread,
};

use proptest::prelude::*;

const FIXTURE: &str = include_str!("fixtures/msr_sample.csv");

fn parse_fixture() -> (Vec<BlkRecord>, u64, u64) {
    let mut src = MsrCsvSource::new(FIXTURE.as_bytes(), 4096);
    let mut recs = Vec::new();
    while let Some(r) = src.next_record() {
        recs.push(r);
    }
    (recs, src.records_parsed(), src.lines_skipped())
}

/// The committed MSR-Cambridge-style fixture parses fully, survives a
/// serialize → re-parse round trip record-for-record, and malformed lines
/// are counted rather than fatal.
#[test]
fn fixture_round_trips_through_the_parser() {
    let (recs, parsed, skipped) = parse_fixture();
    assert_eq!(recs.len(), 36, "every well-formed fixture row parses");
    assert_eq!(parsed, 36);
    assert_eq!(skipped, 2, "header + the malformed line are skipped");
    // Arrival instants are origin-shifted and non-decreasing (the fixture
    // contains one deliberately out-of-order timestamp).
    assert_eq!(recs[0].at.as_nanos(), 0, "origin shifts to zero");
    for w in recs.windows(2) {
        assert!(w[0].at <= w[1].at, "clamped to non-decreasing");
    }
    assert!(recs.iter().any(|r| r.op == BlkOp::Read));
    assert!(recs.iter().any(|r| r.op == BlkOp::Write));
    assert_eq!(
        recs.iter().filter(|r| r.op == BlkOp::Trim).count(),
        2,
        "Trim and UNMAP rows both normalize to trims"
    );
    assert!(recs.iter().all(|r| r.pages >= 1));
    // Round trip: serialize every parsed record back to CSV and re-parse.
    let csv: String = recs
        .iter()
        .map(|r| to_msr_csv_line(r, 4096, "hm", 1) + "\n")
        .collect();
    let mut reparse = MsrCsvSource::new(csv.as_bytes(), 4096);
    let mut round = Vec::new();
    while let Some(r) = reparse.next_record() {
        round.push(r);
    }
    assert_eq!(recs, round, "serialize → parse must be the identity");
    assert_eq!(reparse.lines_skipped(), 0);
}

/// The acceptance bar for production-scale ingestion: stream well over a
/// million IOs through the full CSV chain while the replay-side buffer
/// never holds more than one chunk of records.
#[test]
fn streaming_a_million_records_stays_chunk_bounded() {
    const RECORDS: u64 = 1_050_000;
    const CHUNK: usize = 4096;
    let shape = SynthShape {
        footprint_pages: 50_000,
        read_fraction: 0.6,
        trim_fraction: 0.01,
        zipf_theta: 0.9,
        pages_per_record: 2,
        mean_interarrival: SimDuration::from_micros(5),
        interarrival_cv: 1.5,
    };
    let csv = SynthCsv::new(SyntheticTrace::new(shape, RECORDS, 0xBEEF), 4096);
    let parsed = MsrCsvSource::new(BufReader::new(csv), 4096);
    let probe = Arc::new(AtomicUsize::new(0));
    let mut chunked = ChunkedSource::new(Remap::new(parsed, 1 << 20), CHUNK)
        .with_probe(Arc::clone(&probe));
    let mut n = 0u64;
    while chunked.next_record().is_some() {
        n += 1;
    }
    assert!(n >= 1_000_000, "drained {n} records, wanted >= 1M");
    assert_eq!(n, RECORDS, "the CSV chain must be lossless");
    let peak = probe.load(Ordering::Relaxed);
    assert!(
        peak <= CHUNK,
        "peak resident records {peak} exceeded the chunk bound {CHUNK}"
    );
    assert_eq!(chunked.peak_resident(), peak);
    assert!(peak > 0);
}

// ---------------------------------------------------------------------
// replay determinism

fn stack(queue: QueueKind) -> Os {
    let ctrl_cfg = ControllerConfig {
        queue,
        ..ControllerConfig::default()
    };
    let ctrl = Controller::new(Geometry::tiny(), TimingSpec::slc(), ctrl_cfg).unwrap();
    let os_cfg = OsConfig {
        queue,
        queue_depth: 16,
        ..OsConfig::default()
    };
    Os::new(ctrl, os_cfg)
}

fn replay_fingerprint(queue: QueueKind, open_loop: bool) -> String {
    use std::fmt::Write;
    let mut os = stack(queue);
    let shape = SynthShape {
        footprint_pages: 600,
        read_fraction: 0.5,
        trim_fraction: 0.02,
        zipf_theta: 1.0,
        pages_per_record: 1,
        mean_interarrival: SimDuration::from_micros(8),
        interarrival_cv: 1.8,
    };
    let csv = SynthCsv::new(SyntheticTrace::new(shape, 1_500, 0xD0), 4096);
    let parsed = MsrCsvSource::new(BufReader::new(csv), 4096);
    let src = ChunkedSource::new(Remap::new(parsed, 1_024), 128);
    let w = if open_loop {
        ReplayThread::open_loop(src, 4.0)
    } else {
        ReplayThread::closed_loop(src, 4.0)
    };
    let tid = os.add_thread(Box::new(w));
    os.run();
    let s = os.thread_stats(tid);
    let a = os.controller().array().counters();
    let mut out = String::new();
    writeln!(
        out,
        "now={} events={} r={} w={} t={} rp99={} wp99={} reads={} programs={} erases={}",
        os.now().as_nanos(),
        os.events_simulated(),
        s.reads_completed,
        s.writes_completed,
        s.trims_completed,
        s.read_latency.p99().as_nanos(),
        s.write_latency.p99().as_nanos(),
        a.reads,
        a.programs,
        a.erases,
    )
    .unwrap();
    out
}

/// Fixed-seed open-loop replay produces byte-identical fingerprints across
/// repeated runs AND across both event-queue backends — replay rides the
/// OS timer machinery, so this pins the timer path too.
#[test]
fn open_loop_replay_is_deterministic_across_queue_kinds() {
    let heap_a = replay_fingerprint(QueueKind::Heap, true);
    let heap_b = replay_fingerprint(QueueKind::Heap, true);
    let cal_a = replay_fingerprint(QueueKind::Calendar, true);
    let cal_b = replay_fingerprint(QueueKind::Calendar, true);
    assert_eq!(heap_a, heap_b, "open-loop replay drifted between runs");
    assert_eq!(cal_a, cal_b, "open-loop replay drifted between runs");
    assert_eq!(heap_a, cal_a, "calendar backend diverged from heap");
    assert!(heap_a.contains("events="));
}

/// Same pin for the closed-loop mode (timer-paced think times).
#[test]
fn closed_loop_replay_is_deterministic_across_queue_kinds() {
    let heap_a = replay_fingerprint(QueueKind::Heap, false);
    let heap_b = replay_fingerprint(QueueKind::Heap, false);
    let cal_a = replay_fingerprint(QueueKind::Calendar, false);
    assert_eq!(heap_a, heap_b, "closed-loop replay drifted between runs");
    assert_eq!(heap_a, cal_a, "calendar backend diverged from heap");
}

/// Closed-loop replay must preserve recorded think times: with warp 1 the
/// simulated span can never undercut the sum of recorded gaps, while an
/// aggressive open-loop warp compresses the same trace's wall clock.
#[test]
fn closed_loop_preserves_think_times_and_warp_compresses() {
    let gap = SimDuration::from_micros(40);
    let records = 200u64;
    let shape = SynthShape {
        footprint_pages: 256,
        read_fraction: 0.5,
        trim_fraction: 0.0,
        zipf_theta: 0.0,
        pages_per_record: 1,
        mean_interarrival: gap,
        interarrival_cv: 0.0, // evenly spaced: every gap is exactly `gap`
    };
    let run = |open_loop: bool, warp: f64| {
        let mut os = stack(QueueKind::Heap);
        let src = SyntheticTrace::new(shape.clone(), records, 0x7A);
        let w = if open_loop {
            ReplayThread::open_loop(src, warp)
        } else {
            ReplayThread::closed_loop(src, warp)
        };
        let tid = os.add_thread(Box::new(w));
        os.run();
        let s = os.thread_stats(tid);
        assert_eq!(s.reads_completed + s.writes_completed, records);
        os.now()
    };
    let floor = gap * (records - 1);
    let closed = run(false, 1.0);
    assert!(
        closed.as_nanos() >= floor.as_nanos(),
        "closed-loop finished at {closed:?}, below the think-time floor {floor:?}"
    );
    // Open-loop at warp 20 shrinks every recorded gap 20×; the run becomes
    // device-bound, so it must land well under the think-time-paced run.
    let warped = run(true, 20.0);
    assert!(
        warped.as_nanos() < closed.as_nanos(),
        "open-loop warp 20 should compress the recorded clock: {warped:?} vs {closed:?}"
    );
}

// ---------------------------------------------------------------------
// the on_timer regression (stray timer after trace exhaustion)

/// Wraps a [`TraceThread`] and registers one extra short timer in `init` —
/// the shape of any composite workload that mixes its own timers with the
/// replayer's. The stray timer fires after the (zero-think-time) trace has
/// already submitted its last entry.
struct ExtraTimer {
    inner: TraceThread,
}

impl Workload for ExtraTimer {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.inner.init(ctx);
        ctx.set_timer(SimDuration::from_nanos(1));
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, done: CompletedIo) {
        self.inner.call_back(ctx, done);
    }

    fn on_timer(&mut self, ctx: &mut ThreadCtx) {
        self.inner.on_timer(ctx);
    }

    fn name(&self) -> &str {
        "extra-timer"
    }
}

/// Regression: a timer that fires after the entry list is exhausted used
/// to index `entries[next]` out of bounds and panic the simulation; it
/// must finish the thread instead.
#[test]
fn stray_timer_after_trace_exhaustion_finishes_instead_of_panicking() {
    let mut os = stack(QueueKind::Heap);
    let entries = vec![TraceEntry::immediate(OsIo::write(3))];
    let tid = os.add_thread(Box::new(ExtraTimer {
        inner: TraceThread::new(entries),
    }));
    os.run();
    assert!(os.thread_finished(tid));
    assert_eq!(os.thread_stats(tid).writes_completed, 1);
}

// ---------------------------------------------------------------------
// properties

proptest! {
    /// For any chunk size the prefetching wrapper preserves record order
    /// exactly and never holds more than one chunk resident.
    #[test]
    fn chunked_prefetch_preserves_order_within_the_bound(
        chunk in 1usize..512,
        records in 1u64..2_000,
        seed in any::<u64>(),
    ) {
        let shape = SynthShape {
            footprint_pages: 512,
            read_fraction: 0.5,
            trim_fraction: 0.05,
            zipf_theta: 0.8,
            pages_per_record: 1,
            mean_interarrival: SimDuration::from_micros(3),
            interarrival_cv: 1.0,
        };
        let mut direct = SyntheticTrace::new(shape.clone(), records, seed);
        let probe = Arc::new(AtomicUsize::new(0));
        let mut chunked = ChunkedSource::new(
            SyntheticTrace::new(shape, records, seed),
            chunk,
        )
        .with_probe(Arc::clone(&probe));
        let mut n = 0u64;
        loop {
            let a = direct.next_record();
            let b = chunked.next_record();
            prop_assert_eq!(a, b, "chunked stream diverged at record {}", n);
            if a.is_none() {
                break;
            }
            n += 1;
        }
        prop_assert_eq!(n, records);
        prop_assert!(probe.load(Ordering::Relaxed) <= chunk);
    }

    /// Characterize(synthesize(shape)) lands near the shape for the op mix
    /// regardless of the seed — the matched-generator contract E23 uses.
    #[test]
    fn characterizer_matches_any_seeded_mix(
        seed in any::<u64>(),
        read_pct in 0u64..101,
    ) {
        let read_fraction = read_pct as f64 / 100.0;
        let shape = SynthShape {
            footprint_pages: 400,
            read_fraction,
            trim_fraction: 0.0,
            zipf_theta: 0.9,
            pages_per_record: 1,
            mean_interarrival: SimDuration::from_micros(10),
            interarrival_cv: 1.0,
        };
        let mut src = SyntheticTrace::new(shape, 4_000, seed);
        let p = characterize(&mut src);
        prop_assert_eq!(p.records, 4_000);
        prop_assert!(
            (p.read_fraction - read_fraction).abs() < 0.05,
            "read mix drifted: wanted {} measured {}", read_fraction, p.read_fraction
        );
    }
}
