//! Block-trace frontend: streaming parsers, characterization, synthesis.
//!
//! Production block traces are measured in the hundreds of millions of
//! IOs, so nothing in this module ever materializes a trace: every stage
//! is a pull-based [`TraceSource`] that yields one [`BlkRecord`] at a
//! time.
//!
//! * [`MsrCsvSource`] parses MSR-Cambridge-style CSV rows
//!   (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, with
//!   the timestamp in Windows-filetime 100 ns ticks and offset/size in
//!   bytes) from any [`BufRead`], shifting the trace origin to `t = 0`
//!   and normalizing byte extents to device pages. Malformed rows and the
//!   header are counted and skipped, not fatal.
//! * [`Remap`] folds a trace's LBA space into a namespace's logical page
//!   space, so a trace captured from a multi-terabyte volume can drive a
//!   small simulated device (or one tenant's namespace).
//! * [`ChunkedSource`] adds chunked prefetch with a bounded buffer: at
//!   most `chunk` records are ever resident, and the observed high-water
//!   mark is exposed via [`ChunkedSource::peak_resident`] (or a shared
//!   [`AtomicUsize`] probe that survives the source being moved into a
//!   workload) so tests and experiments can assert the bound.
//! * [`characterize`] drains a source once and measures the knobs that
//!   matter to an SSD: footprint, read/write/trim mix, Zipf-fit skew,
//!   record size, and inter-arrival burstiness (mean + coefficient of
//!   variation). The resulting [`TraceProfile`] can [`synthesize`]
//!   (`TraceProfile::synthesize`) a matched [`SyntheticTrace`] generator
//!   for scale-up studies: same knobs, any record count.
//! * [`SynthCsv`] renders any [`TraceSource`] back to MSR CSV bytes
//!   lazily (it implements [`std::io::Read`]), which gives experiments a
//!   production-*shaped* multi-million-row CSV stream without a
//!   multi-gigabyte file on disk — and exercises the full parse path.
//!
//! Replay of these sources (open-loop at recorded timestamps, or
//! closed-loop preserving think times) lives in
//! [`crate::trace::ReplayThread`].

use std::collections::BTreeMap;
use std::io::{BufRead, Read};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eagletree_core::{BlkOp, BlkRecord, OnlineStats, SimDuration, SimRng, SimTime, Zipf};

/// A pull-based stream of trace records.
///
/// Sources are *streaming* by contract: implementations must hold O(1)
/// state (plus, for [`ChunkedSource`], a bounded prefetch buffer) so that
/// a 100M-IO trace can be replayed without ever materializing it.
/// Records must arrive with non-decreasing `at` timestamps.
pub trait TraceSource {
    /// The next record, or `None` when the trace is exhausted.
    fn next_record(&mut self) -> Option<BlkRecord>;

    /// Short label for reports.
    fn label(&self) -> &str {
        "trace"
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_record(&mut self) -> Option<BlkRecord> {
        (**self).next_record()
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// Base of the Windows-filetime timestamps emitted by [`to_msr_csv_line`]
/// (an arbitrary instant in 2007, like the real MSR-Cambridge captures).
const MSR_EPOCH_TICKS: u64 = 128_166_372_000_000_000;

/// Render one record as an MSR-Cambridge CSV row (the inverse of
/// [`MsrCsvSource`]'s parser, up to the origin shift: a parsed trace's
/// first arrival is always `t = 0`). Timestamps are 100 ns filetime
/// ticks, so sub-tick nanoseconds round down.
pub fn to_msr_csv_line(rec: &BlkRecord, page_size: u64, host: &str, disk: u32) -> String {
    format!(
        "{},{},{},{},{},{},0",
        MSR_EPOCH_TICKS + rec.at.as_nanos() / 100,
        host,
        disk,
        rec.op.token(),
        rec.page * page_size,
        rec.pages as u64 * page_size,
    )
}

/// Streaming parser for MSR-Cambridge-style CSV block traces.
///
/// Format, one request per row:
///
/// ```text
/// Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
/// 128166372003061629,src1,0,Read,383496192,32768,613
/// ```
///
/// * `Timestamp` — Windows filetime, 100 ns ticks; the first parsed row
///   becomes the trace origin (`t = 0`) and later rows are clamped
///   non-decreasing.
/// * `Type` — `Read`/`Write` (case-insensitive; `R`/`W` accepted) plus
///   `Trim`/`Unmap`/`Discard` for deallocations.
/// * `Offset`/`Size` — bytes, normalized to `page_size`-sized pages
///   (partial first/last pages round outward).
/// * `Hostname`, `DiskNumber`, `ResponseTime` — ignored.
///
/// The header row and malformed rows are skipped and counted
/// ([`MsrCsvSource::lines_skipped`]); IO errors end the trace.
pub struct MsrCsvSource<R> {
    reader: R,
    line: String,
    page_size: u64,
    origin_ticks: Option<u64>,
    last_at_ns: u64,
    parsed: u64,
    skipped: u64,
}

impl<R: BufRead> MsrCsvSource<R> {
    /// Parse `reader` as MSR CSV over a device with `page_size`-byte pages.
    pub fn new(reader: R, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be positive");
        MsrCsvSource {
            reader,
            line: String::new(),
            page_size,
            origin_ticks: None,
            last_at_ns: 0,
            parsed: 0,
            skipped: 0,
        }
    }

    /// Rows successfully parsed so far.
    pub fn records_parsed(&self) -> u64 {
        self.parsed
    }

    /// Rows skipped so far (header, malformed).
    pub fn lines_skipped(&self) -> u64 {
        self.skipped
    }

}

fn parse_msr_row(
    row: &str,
    page_size: u64,
    origin_ticks: &mut Option<u64>,
    last_at_ns: &mut u64,
) -> Option<BlkRecord> {
    let mut fields = row.split(',');
    let ticks: u64 = fields.next()?.trim().parse().ok()?;
    let _host = fields.next()?;
    let _disk = fields.next()?;
    let op = match fields.next()?.trim() {
        t if t.eq_ignore_ascii_case("read") || t.eq_ignore_ascii_case("r") => BlkOp::Read,
        t if t.eq_ignore_ascii_case("write") || t.eq_ignore_ascii_case("w") => BlkOp::Write,
        t if t.eq_ignore_ascii_case("trim")
            || t.eq_ignore_ascii_case("unmap")
            || t.eq_ignore_ascii_case("discard") =>
        {
            BlkOp::Trim
        }
        _ => return None,
    };
    let offset: u64 = fields.next()?.trim().parse().ok()?;
    let size: u64 = fields.next()?.trim().parse().ok()?;
    let origin = *origin_ticks.get_or_insert(ticks);
    let at_ns = ticks
        .saturating_sub(origin)
        .saturating_mul(100)
        .max(*last_at_ns);
    *last_at_ns = at_ns;
    let page = offset / page_size;
    let end = (offset + size.max(1)).div_ceil(page_size);
    let pages = end.saturating_sub(page).clamp(1, u32::MAX as u64) as u32;
    Some(BlkRecord::spanning(SimTime::from_nanos(at_ns), op, page, pages))
}

impl<R: BufRead> TraceSource for MsrCsvSource<R> {
    fn next_record(&mut self) -> Option<BlkRecord> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) | Err(_) => return None,
                Ok(_) => {}
            }
            let row = self.line.trim();
            if row.is_empty() {
                continue;
            }
            match parse_msr_row(row, self.page_size, &mut self.origin_ticks, &mut self.last_at_ns)
            {
                Some(rec) => {
                    self.parsed += 1;
                    return Some(rec);
                }
                None => self.skipped += 1,
            }
        }
    }

    fn label(&self) -> &str {
        "msr-csv"
    }
}

/// Folds a trace's LBA space into a target logical space.
///
/// Production traces address volumes far larger than a simulated device;
/// `Remap` wraps each record's first page modulo `logical_pages` (and
/// clips the span to the space) so the stream lands inside a device's —
/// or one tenant namespace's — logical pages while preserving the access
/// *pattern* (two requests to the same traced LBA still collide).
pub struct Remap<S> {
    inner: S,
    logical_pages: u64,
}

impl<S: TraceSource> Remap<S> {
    pub fn new(inner: S, logical_pages: u64) -> Self {
        assert!(logical_pages > 0, "target space must be non-empty");
        Remap {
            inner,
            logical_pages,
        }
    }
}

impl<S: TraceSource> TraceSource for Remap<S> {
    fn next_record(&mut self) -> Option<BlkRecord> {
        let mut rec = self.inner.next_record()?;
        rec.page %= self.logical_pages;
        let room = self.logical_pages - rec.page;
        rec.pages = (rec.pages as u64).min(room).max(1) as u32;
        Some(rec)
    }

    fn label(&self) -> &str {
        "remap"
    }
}

/// Chunked prefetch with a bounded resident buffer.
///
/// Pulls up to `chunk` records from the inner source at a time and serves
/// them from a [`std::collections::VecDeque`]; refills only when the
/// buffer drains, so at most `chunk` records are ever resident regardless
/// of trace length. [`ChunkedSource::peak_resident`] reports the observed
/// high-water mark; [`ChunkedSource::with_probe`] mirrors it into a
/// shared counter for when the source is moved into a boxed workload.
pub struct ChunkedSource<S> {
    inner: Option<S>,
    buf: std::collections::VecDeque<BlkRecord>,
    chunk: usize,
    peak: usize,
    probe: Option<Arc<AtomicUsize>>,
}

impl<S: TraceSource> ChunkedSource<S> {
    pub fn new(inner: S, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        ChunkedSource {
            inner: Some(inner),
            buf: std::collections::VecDeque::with_capacity(chunk),
            chunk,
            peak: 0,
            probe: None,
        }
    }

    /// Mirror the peak resident count into `probe` (monotone max), so the
    /// bound stays observable after the source is boxed into a thread.
    pub fn with_probe(mut self, probe: Arc<AtomicUsize>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Highest number of records simultaneously resident so far.
    pub fn peak_resident(&self) -> usize {
        self.peak
    }

    fn refill(&mut self) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        while self.buf.len() < self.chunk {
            match inner.next_record() {
                Some(rec) => self.buf.push_back(rec),
                None => {
                    self.inner = None;
                    break;
                }
            }
        }
        self.peak = self.peak.max(self.buf.len());
        if let Some(p) = &self.probe {
            p.fetch_max(self.peak, Ordering::Relaxed);
        }
    }
}

impl<S: TraceSource> TraceSource for ChunkedSource<S> {
    fn next_record(&mut self) -> Option<BlkRecord> {
        if self.buf.is_empty() {
            self.refill();
        }
        self.buf.pop_front()
    }

    fn label(&self) -> &str {
        "chunked"
    }
}

/// What the characterizer measured about a trace.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Records drained.
    pub records: u64,
    /// Total pages issued (records weighted by span).
    pub pages_issued: u64,
    /// Distinct pages touched.
    pub footprint_pages: u64,
    /// Fraction of records that are reads / writes / trims.
    pub read_fraction: f64,
    pub write_fraction: f64,
    pub trim_fraction: f64,
    /// Least-squares Zipf exponent fitted to the page-popularity ranking
    /// (0 = uniform; ~1 = classic Zipf skew).
    pub zipf_theta: f64,
    /// Mean pages per record.
    pub mean_record_pages: f64,
    /// Mean inter-arrival gap between consecutive records.
    pub mean_interarrival: SimDuration,
    /// Coefficient of variation of the inter-arrival gaps (1 ≈ Poisson,
    /// larger = burstier).
    pub interarrival_cv: f64,
    /// Arrival instant of the last record (trace duration).
    pub span: SimDuration,
}

/// Drain `src` and measure its shape. One pass, memory bounded by the
/// footprint (a per-page popularity count — after [`Remap`], at most the
/// target logical space).
pub fn characterize<S: TraceSource>(src: &mut S) -> TraceProfile {
    let mut freq: BTreeMap<u64, u64> = BTreeMap::new();
    let mut gaps = OnlineStats::new();
    // Exact integer accumulator for the mean: the ns-typed profile
    // field must not inherit float summation error (R3 discipline);
    // OnlineStats still feeds the (dimensionless) burstiness cv.
    let (mut gap_total, mut gap_count) = (0u128, 0u64);
    let mut last_at: Option<SimTime> = None;
    let (mut records, mut pages_issued) = (0u64, 0u64);
    let (mut reads, mut writes, mut trims) = (0u64, 0u64, 0u64);
    let mut span = SimDuration::ZERO;
    while let Some(rec) = src.next_record() {
        records += 1;
        match rec.op {
            BlkOp::Read => reads += 1,
            BlkOp::Write => writes += 1,
            BlkOp::Trim => trims += 1,
        }
        for i in 0..rec.pages as u64 {
            *freq.entry(rec.page + i).or_insert(0) += 1;
            pages_issued += 1;
        }
        if let Some(prev) = last_at {
            let gap = rec.at.saturating_since(prev).as_nanos();
            gap_total += gap as u128;
            gap_count += 1;
            gaps.record(gap as f64);
        }
        last_at = Some(rec.at);
        span = rec.at.saturating_since(SimTime::ZERO);
    }
    let frac = |n: u64| {
        if records == 0 {
            0.0
        } else {
            n as f64 / records as f64
        }
    };
    let mean_gap = if gaps.count() == 0 { 0.0 } else { gaps.mean() };
    let cv = if mean_gap > 0.0 {
        gaps.stddev() / mean_gap
    } else {
        0.0
    };
    TraceProfile {
        records,
        pages_issued,
        footprint_pages: freq.len() as u64,
        read_fraction: frac(reads),
        write_fraction: frac(writes),
        trim_fraction: frac(trims),
        zipf_theta: fit_zipf_theta(&freq),
        mean_record_pages: if records == 0 {
            0.0
        } else {
            pages_issued as f64 / records as f64
        },
        mean_interarrival: SimDuration::from_nanos(if gap_count == 0 {
            0
        } else {
            // Round-to-nearest integer mean; a u64 can't overflow since
            // the mean of u64 gaps is itself ≤ u64::MAX.
            ((gap_total + gap_count as u128 / 2) / gap_count as u128) as u64
        }),
        interarrival_cv: cv,
        span,
    }
}

/// Least-squares fit of `ln(count) = c - theta * ln(rank)` over the
/// popularity ranking. Returns 0 for degenerate inputs; clamped to
/// `[0, 3]` (real traces rarely exceed theta ≈ 1.2).
fn fit_zipf_theta(freq: &BTreeMap<u64, u64>) -> f64 {
    if freq.len() < 2 {
        return 0.0;
    }
    let mut counts: Vec<u64> = freq.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let n = counts.len() as f64;
    for (rank, &c) in counts.iter().enumerate() {
        let x = ((rank + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / denom;
    (-slope).clamp(0.0, 3.0)
}

impl TraceProfile {
    /// Build a matched synthetic generator: same footprint, op mix, skew,
    /// record size and burstiness, but any record count — the scale-up
    /// path when the captured trace is shorter than the experiment needs.
    pub fn synthesize(&self, records: u64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(
            SynthShape {
                footprint_pages: self.footprint_pages.max(1),
                read_fraction: self.read_fraction,
                trim_fraction: self.trim_fraction,
                zipf_theta: self.zipf_theta,
                pages_per_record: (self.mean_record_pages.round() as u32).max(1),
                mean_interarrival: self.mean_interarrival,
                interarrival_cv: self.interarrival_cv,
            },
            records,
            seed,
        )
    }
}

/// The knobs a [`SyntheticTrace`] reproduces.
#[derive(Debug, Clone)]
pub struct SynthShape {
    pub footprint_pages: u64,
    pub read_fraction: f64,
    pub trim_fraction: f64,
    pub zipf_theta: f64,
    pub pages_per_record: u32,
    pub mean_interarrival: SimDuration,
    /// Burstiness: matched with a two-point gap distribution —
    /// a zero gap with probability `q = cv² / (1 + cv²)`, else a wide gap
    /// of `mean / (1 - q)`, which reproduces both the mean and the CV.
    pub interarrival_cv: f64,
}

/// Deterministic trace generator matching a [`SynthShape`].
///
/// Pages follow a Zipf ranking scattered over the footprint by a
/// multiplicative hash (so hot pages are not spatially adjacent), the op
/// is Bernoulli per the read/trim mix, and gaps follow the two-point
/// burst mixture described on [`SynthShape::interarrival_cv`], quantized
/// to 100 ns so records survive an MSR CSV round-trip exactly.
pub struct SyntheticTrace {
    shape: SynthShape,
    zipf: Zipf,
    rng: SimRng,
    remaining: u64,
    at_ns: u64,
    emitted: u64,
    burst_q: f64,
    wide_gap_ns: u64,
}

impl SyntheticTrace {
    pub fn new(shape: SynthShape, records: u64, seed: u64) -> Self {
        let q = {
            let cv2 = shape.interarrival_cv * shape.interarrival_cv;
            (cv2 / (1.0 + cv2)).clamp(0.0, 0.99)
        };
        let mean = shape.mean_interarrival.as_nanos() as f64;
        // Quantize to 100 ns filetime ticks for exact CSV round-trips.
        let wide = ((mean / (1.0 - q)).round() as u64 / 100) * 100;
        SyntheticTrace {
            zipf: Zipf::new(shape.footprint_pages.max(1) as usize, shape.zipf_theta),
            rng: SimRng::new(seed),
            remaining: records,
            at_ns: 0,
            emitted: 0,
            burst_q: q,
            wide_gap_ns: wide,
            shape,
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next_record(&mut self) -> Option<BlkRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.emitted > 0 && !self.rng.gen_bool(self.burst_q) {
            self.at_ns += self.wide_gap_ns;
        }
        self.emitted += 1;
        let rank = self.zipf.sample(&mut self.rng) as u64;
        // Scatter ranks over the footprint so hot pages are not adjacent
        // (same multiplicative-hash idiom as `gen::ZipfGen`).
        let page = rank.wrapping_mul(2_654_435_761) % self.shape.footprint_pages.max(1);
        let u = self.rng.gen_f64();
        let op = if u < self.shape.read_fraction {
            BlkOp::Read
        } else if u < self.shape.read_fraction + self.shape.trim_fraction {
            BlkOp::Trim
        } else {
            BlkOp::Write
        };
        Some(BlkRecord::spanning(
            SimTime::from_nanos(self.at_ns),
            op,
            page,
            self.shape.pages_per_record.max(1),
        ))
    }

    fn label(&self) -> &str {
        "synthetic"
    }
}

/// Lazily renders a [`TraceSource`] to MSR CSV bytes.
///
/// Implements [`std::io::Read`], so `BufReader<SynthCsv<…>>` feeds
/// [`MsrCsvSource`] a production-shaped multi-million-row CSV stream with
/// O(1) memory and no file on disk — the experiments' stand-in for a real
/// capture, exercising the entire parse path.
pub struct SynthCsv<S> {
    src: S,
    page_size: u64,
    buf: Vec<u8>,
    pos: usize,
    header_emitted: bool,
}

impl<S: TraceSource> SynthCsv<S> {
    pub fn new(src: S, page_size: u64) -> Self {
        SynthCsv {
            src,
            page_size,
            buf: Vec::new(),
            pos: 0,
            header_emitted: false,
        }
    }
}

impl<S: TraceSource> Read for SynthCsv<S> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if !self.header_emitted {
                self.header_emitted = true;
                self.buf
                    .extend_from_slice(b"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
            }
            if let Some(rec) = self.src.next_record() {
                self.buf
                    .extend_from_slice(to_msr_csv_line(&rec, self.page_size, "synth", 0).as_bytes());
                self.buf.push(b'\n');
            }
            if self.buf.is_empty() {
                return Ok(0);
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Vec<BlkRecord> {
        let mut src = MsrCsvSource::new(text.as_bytes(), 4096);
        std::iter::from_fn(|| src.next_record()).collect()
    }

    #[test]
    fn parses_msr_rows_and_shifts_origin() {
        let text = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n\
                    128166372003061629,src1,0,Read,8192,4096,613\n\
                    128166372003061729,src1,0,Write,4096,8192,100\n";
        let recs = parse(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at, SimTime::ZERO);
        assert_eq!(recs[0].op, BlkOp::Read);
        assert_eq!((recs[0].page, recs[0].pages), (2, 1));
        // 100 ticks later = 10 µs.
        assert_eq!(recs[1].at.as_nanos(), 10_000);
        assert_eq!((recs[1].page, recs[1].pages), (1, 2));
    }

    #[test]
    fn partial_pages_round_outward_and_ops_parse_loosely() {
        // 1 byte at offset 4095 straddles nothing: one page.
        let recs = parse("1000,h,0,w,4095,1,0\n1001,h,0,TRIM,4000,200,0\n");
        assert_eq!(recs[0].op, BlkOp::Write);
        assert_eq!((recs[0].page, recs[0].pages), (0, 1));
        // 200 bytes at 4000 straddles pages 0 and 1.
        assert_eq!(recs[1].op, BlkOp::Trim);
        assert_eq!((recs[1].page, recs[1].pages), (0, 2));
    }

    #[test]
    fn malformed_rows_are_counted_not_fatal() {
        let text = "garbage line\n1000,h,0,Read,0,4096,0\n1001,h,0,Levitate,0,4096,0\n\
                    1002,h,0,Write,zz,4096,0\n1003,h,0,Write,4096,4096,0\n";
        let mut src = MsrCsvSource::new(text.as_bytes(), 4096);
        let recs: Vec<_> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(src.records_parsed(), 2);
        assert_eq!(src.lines_skipped(), 3);
    }

    #[test]
    fn timestamps_clamp_non_decreasing() {
        let recs = parse("2000,h,0,Read,0,4096,0\n1000,h,0,Read,0,4096,0\n3000,h,0,Read,0,4096,0\n");
        assert_eq!(recs[0].at.as_nanos(), 0);
        assert_eq!(recs[1].at.as_nanos(), 0); // went backwards: clamped
        assert_eq!(recs[2].at.as_nanos(), 100_000);
    }

    #[test]
    fn remap_folds_into_target_space() {
        let mut src = Remap::new(
            SyntheticTrace::new(
                SynthShape {
                    footprint_pages: 100_000,
                    read_fraction: 0.5,
                    trim_fraction: 0.0,
                    zipf_theta: 0.9,
                    pages_per_record: 4,
                    mean_interarrival: SimDuration::from_micros(10),
                    interarrival_cv: 1.0,
                },
                500,
                7,
            ),
            64,
        );
        while let Some(r) = src.next_record() {
            assert!(r.last_page() < 64, "record escapes the target space: {r:?}");
        }
    }

    #[test]
    fn chunked_source_is_order_preserving_and_bounded() {
        let inner = SyntheticTrace::new(
            SynthShape {
                footprint_pages: 256,
                read_fraction: 0.6,
                trim_fraction: 0.02,
                zipf_theta: 1.0,
                pages_per_record: 1,
                mean_interarrival: SimDuration::from_micros(5),
                interarrival_cv: 2.0,
            },
            10_000,
            11,
        );
        let reference: Vec<_> = {
            let mut s = SyntheticTrace::new(
                SynthShape {
                    footprint_pages: 256,
                    read_fraction: 0.6,
                    trim_fraction: 0.02,
                    zipf_theta: 1.0,
                    pages_per_record: 1,
                    mean_interarrival: SimDuration::from_micros(5),
                    interarrival_cv: 2.0,
                },
                10_000,
                11,
            );
            std::iter::from_fn(move || s.next_record()).collect()
        };
        let mut chunked = ChunkedSource::new(inner, 64);
        let got: Vec<_> = std::iter::from_fn(|| chunked.next_record()).collect();
        assert_eq!(got, reference);
        assert!(chunked.peak_resident() <= 64);
        assert!(chunked.peak_resident() > 0);
    }

    #[test]
    fn characterizer_recovers_known_shape() {
        let shape = SynthShape {
            footprint_pages: 512,
            read_fraction: 0.7,
            trim_fraction: 0.0,
            zipf_theta: 1.0,
            pages_per_record: 1,
            mean_interarrival: SimDuration::from_micros(20),
            interarrival_cv: 1.5,
        };
        let mut src = SyntheticTrace::new(shape, 60_000, 42);
        let p = characterize(&mut src);
        assert_eq!(p.records, 60_000);
        assert!((p.read_fraction - 0.7).abs() < 0.02, "mix: {}", p.read_fraction);
        // Hash scattering over the footprint collides a little, so allow slack.
        assert!(p.footprint_pages >= 300 && p.footprint_pages <= 512);
        assert!(
            (p.zipf_theta - 1.0).abs() < 0.35,
            "theta fit: {}",
            p.zipf_theta
        );
        let mean_us = p.mean_interarrival.as_nanos() as f64 / 1_000.0;
        assert!((mean_us - 20.0).abs() < 2.0, "mean gap: {mean_us} µs");
        assert!(
            (p.interarrival_cv - 1.5).abs() < 0.2,
            "cv: {}",
            p.interarrival_cv
        );
    }

    #[test]
    fn synth_csv_round_trips_through_the_parser() {
        let shape = SynthShape {
            footprint_pages: 128,
            read_fraction: 0.5,
            trim_fraction: 0.1,
            zipf_theta: 0.8,
            pages_per_record: 2,
            mean_interarrival: SimDuration::from_micros(7),
            interarrival_cv: 2.0,
        };
        let reference: Vec<_> = {
            let mut s = SyntheticTrace::new(shape.clone(), 2_000, 3);
            std::iter::from_fn(move || s.next_record()).collect()
        };
        let csv = SynthCsv::new(SyntheticTrace::new(shape, 2_000, 3), 4096);
        let mut parsed = MsrCsvSource::new(BufReader::new(csv), 4096);
        let got: Vec<_> = std::iter::from_fn(|| parsed.next_record()).collect();
        assert_eq!(got, reference);
        assert_eq!(parsed.lines_skipped(), 1); // the header
    }

    #[test]
    fn uniform_trace_fits_near_zero_theta() {
        let mut src = SyntheticTrace::new(
            SynthShape {
                footprint_pages: 256,
                read_fraction: 1.0,
                trim_fraction: 0.0,
                zipf_theta: 0.0,
                pages_per_record: 1,
                mean_interarrival: SimDuration::from_micros(1),
                interarrival_cv: 0.0,
            },
            40_000,
            9,
        );
        let p = characterize(&mut src);
        assert!(p.zipf_theta < 0.2, "uniform fit drifted: {}", p.zipf_theta);
        assert!(p.interarrival_cv < 0.05);
    }
}
