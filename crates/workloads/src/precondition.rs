//! Preconditioning threads.
//!
//! "Bringing the SSD to a well-defined state … can typically be done by
//! starting thread(s) that write over the entire logical address space
//! sequentially and/or randomly, and then triggering the experiment
//! workload once the preparation threads finished" (§2.3, following the
//! uFLIP methodology). These helpers build such threads; wire them as
//! dependencies with [`eagletree_os::Os::add_thread_after`].

use eagletree_os::Workload;

use crate::gen::{Pumped, RandWriteGen, Region, SeqWriteGen};

/// A thread that writes the entire logical space once, sequentially.
pub fn sequential_fill(window: u64) -> Box<dyn Workload> {
    // count = 0 means "whole space"; resolved lazily because the logical
    // size is only known from the context. We use a large window-driven
    // generator sized at first call.
    Box::new(
        Pumped::new(WholeSpaceSeq { issued: 0 }, window, 0xF111).named("seq-precondition"),
    )
}

/// A thread that writes as many random pages as the logical space holds
/// (uniformly, so roughly 63% coverage with duplicates — the classic
/// "random preconditioning" state).
pub fn random_fill(window: u64, seed: u64) -> Box<dyn Workload> {
    Box::new(
        Pumped::new(WholeSpaceRand { issued: 0, count: None }, window, seed)
            .named("rand-precondition"),
    )
}

/// Sequential whole-space writer that sizes itself from the context.
struct WholeSpaceSeq {
    issued: u64,
}

impl crate::gen::IoGen for WholeSpaceSeq {
    fn next_io(
        &mut self,
        _rng: &mut eagletree_core::SimRng,
        logical_pages: u64,
    ) -> Option<eagletree_os::OsIo> {
        if self.issued >= logical_pages {
            return None;
        }
        let lpn = self.issued;
        self.issued += 1;
        Some(eagletree_os::OsIo::write(lpn))
    }
}

/// Random whole-space writer (N = logical pages uniform writes).
struct WholeSpaceRand {
    issued: u64,
    count: Option<u64>,
}

impl crate::gen::IoGen for WholeSpaceRand {
    fn next_io(
        &mut self,
        rng: &mut eagletree_core::SimRng,
        logical_pages: u64,
    ) -> Option<eagletree_os::OsIo> {
        let count = *self.count.get_or_insert(logical_pages);
        if self.issued >= count {
            return None;
        }
        self.issued += 1;
        Some(eagletree_os::OsIo::write(rng.gen_range(logical_pages)))
    }
}

/// Convenience: a sequential fill over a subregion (e.g. only the area a
/// measured workload will touch).
pub fn region_fill(region: Region, window: u64) -> Box<dyn Workload> {
    Box::new(
        Pumped::new(SeqWriteGen::new(region, region.len), window, 0xF112)
            .named("region-precondition"),
    )
}

/// Convenience: `count` random writes over a region (aging).
pub fn region_age(region: Region, count: u64, window: u64, seed: u64) -> Box<dyn Workload> {
    Box::new(Pumped::new(RandWriteGen::new(region, count), window, seed).named("region-age"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::IoGen;
    use eagletree_core::SimRng;

    #[test]
    fn whole_space_seq_covers_exactly_once() {
        let mut g = WholeSpaceSeq { issued: 0 };
        let mut rng = SimRng::new(0);
        let mut seen = Vec::new();
        while let Some(io) = g.next_io(&mut rng, 16) {
            seen.push(io.lpn);
        }
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn whole_space_rand_issues_n_writes_in_range() {
        let mut g = WholeSpaceRand {
            issued: 0,
            count: None,
        };
        let mut rng = SimRng::new(7);
        let mut n = 0;
        while let Some(io) = g.next_io(&mut rng, 32) {
            assert!(io.lpn < 32);
            n += 1;
        }
        assert_eq!(n, 32);
    }

    #[test]
    fn builders_produce_named_threads() {
        assert_eq!(sequential_fill(8).name(), "seq-precondition");
        assert_eq!(random_fill(8, 1).name(), "rand-precondition");
        assert_eq!(region_fill(Region::new(0, 4), 2).name(), "region-precondition");
        assert_eq!(region_age(Region::new(0, 4), 10, 2, 3).name(), "region-age");
    }
}
