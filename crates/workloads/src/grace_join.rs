//! Grace hash join IO pattern (§2.2).
//!
//! Two phases over pre-written input relations R and S:
//!
//! 1. **Partition**: read each input page sequentially and immediately
//!    write it into one of `partitions` output buckets (hash fan-out) —
//!    a sequential-read + scattered-write pattern.
//! 2. **Probe**: for each bucket, read its R pages (build the hash table)
//!    then its S pages (probe) — bucket-sequential reads.
//!
//! The thread records when each phase finishes so experiments can compare
//! layouts and allocation policies on the two very different patterns.

use eagletree_core::SimTime;
use eagletree_os::{CompletedIo, OsIo, ThreadCtx, ThreadId, Workload};

use crate::gen::Region;

/// Shared cell through which the join reports `(partition_done,
/// probe_done)` to the experiment that spawned it.
pub type PhaseSink = std::rc::Rc<std::cell::RefCell<(Option<SimTime>, Option<SimTime>)>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Partition,
    Probe,
    Done,
}

/// A Grace hash join over two relations.
pub struct GraceHashJoin {
    region_r: Region,
    region_s: Region,
    region_out: Region,
    partitions: u64,
    window: u64,

    phase: Phase,
    // Partition phase cursors.
    next_input: u64,
    reads_in_flight: u64,
    writes_in_flight: u64,
    pages_partitioned: u64,
    bucket_cursor: Vec<u64>,
    // Probe phase cursor.
    next_probe: u64,
    probes_in_flight: u64,

    /// When the partition phase completed.
    pub partition_done_at: Option<SimTime>,
    /// When the probe phase (and the join) completed.
    pub probe_done_at: Option<SimTime>,
    /// Optional external sink for the phase times: `(partition_done,
    /// probe_done)`. The OS owns the workload box, so experiments read
    /// phase boundaries through this shared cell.
    phase_sink: Option<PhaseSink>,
}

impl GraceHashJoin {
    /// Join relations stored at `region_r` / `region_s`, partitioning into
    /// `partitions` buckets inside `region_out` (must hold |R| + |S|
    /// pages), keeping up to `window` IOs in flight.
    pub fn new(region_r: Region, region_s: Region, region_out: Region, partitions: u64, window: u64) -> Self {
        assert!(partitions > 0 && window > 0);
        assert!(
            region_out.len >= region_r.len + region_s.len,
            "output region must hold both relations"
        );
        GraceHashJoin {
            region_r,
            region_s,
            region_out,
            partitions,
            window,
            phase: Phase::Partition,
            next_input: 0,
            reads_in_flight: 0,
            writes_in_flight: 0,
            pages_partitioned: 0,
            bucket_cursor: vec![0; partitions as usize],
            next_probe: 0,
            probes_in_flight: 0,
            partition_done_at: None,
            probe_done_at: None,
            phase_sink: None,
        }
    }

    /// Report phase completion times through a shared cell.
    pub fn with_phase_sink(mut self, sink: PhaseSink) -> Self {
        self.phase_sink = Some(sink);
        self
    }

    fn total_input(&self) -> u64 {
        self.region_r.len + self.region_s.len
    }

    /// The input page at partition-phase index `i`.
    fn input_lpn(&self, i: u64) -> u64 {
        if i < self.region_r.len {
            self.region_r.start + i
        } else {
            self.region_s.start + (i - self.region_r.len)
        }
    }

    /// Bucket capacity inside the output region (equal slices).
    fn bucket_capacity(&self) -> u64 {
        self.region_out.len / self.partitions
    }

    fn feed_partition(&mut self, ctx: &mut ThreadCtx) {
        while self.reads_in_flight + self.writes_in_flight < self.window
            && self.next_input < self.total_input()
        {
            ctx.submit(OsIo::read(self.input_lpn(self.next_input)));
            self.next_input += 1;
            self.reads_in_flight += 1;
        }
    }

    fn feed_probe(&mut self, ctx: &mut ThreadCtx) {
        // Probe reads the output region bucket-by-bucket in layout order,
        // covering exactly the pages written during partitioning.
        while self.probes_in_flight < self.window {
            let Some(lpn) = self.probe_lpn(self.next_probe) else {
                break;
            };
            ctx.submit(OsIo::read(lpn));
            self.next_probe += 1;
            self.probes_in_flight += 1;
        }
        if self.probes_in_flight == 0 && self.probe_lpn(self.next_probe).is_none() {
            self.phase = Phase::Done;
            self.probe_done_at = Some(ctx.now());
            if let Some(s) = &self.phase_sink {
                s.borrow_mut().1 = Some(ctx.now());
            }
            ctx.finish();
        }
    }

    /// The `i`-th page read during probe, walking buckets in order.
    fn probe_lpn(&self, mut i: u64) -> Option<u64> {
        let cap = self.bucket_capacity();
        for (b, &filled) in self.bucket_cursor.iter().enumerate() {
            if i < filled {
                return Some(self.region_out.start + b as u64 * cap + i);
            }
            i -= filled;
        }
        None
    }
}

impl Workload for GraceHashJoin {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.feed_partition(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, done: CompletedIo) {
        match self.phase {
            Phase::Partition => {
                match done.io.kind {
                    eagletree_controller::RequestKind::Read => {
                        self.reads_in_flight -= 1;
                        // Hash the input page into a bucket and write it out.
                        let bucket =
                            (done.io.lpn.wrapping_mul(2_654_435_761) % self.partitions) as usize;
                        let cap = self.bucket_capacity();
                        let used = self.bucket_cursor[bucket];
                        assert!(
                            used < cap,
                            "bucket {bucket} overflow: skewed hash exceeded slice"
                        );
                        let out = self.region_out.start + bucket as u64 * cap + used;
                        self.bucket_cursor[bucket] += 1;
                        ctx.submit(OsIo::write(out));
                        self.writes_in_flight += 1;
                    }
                    _ => {
                        self.writes_in_flight -= 1;
                        self.pages_partitioned += 1;
                    }
                }
                if self.pages_partitioned == self.total_input() {
                    self.phase = Phase::Probe;
                    self.partition_done_at = Some(ctx.now());
                    if let Some(s) = &self.phase_sink {
                        s.borrow_mut().0 = Some(ctx.now());
                    }
                    self.feed_probe(ctx);
                } else {
                    self.feed_partition(ctx);
                }
            }
            Phase::Probe => {
                self.probes_in_flight -= 1;
                self.feed_probe(ctx);
            }
            Phase::Done => {}
        }
    }

    fn name(&self) -> &str {
        "grace-hash-join"
    }
}

/// Build the standard three-thread Grace join scenario: fill R, fill S
/// (in parallel), then join once both finish. Returns the join thread id.
pub fn build_grace_scenario(
    os: &mut eagletree_os::Os,
    r_pages: u64,
    s_pages: u64,
    partitions: u64,
    window: u64,
) -> ThreadId {
    use crate::precondition::region_fill;
    let region_r = Region::new(0, r_pages);
    let region_s = Region::new(r_pages, s_pages);
    // 2× slack per bucket: hash fan-out of sequential keys is roughly but
    // not perfectly uniform, and a bucket overflow is a hard error.
    let out_len = ((r_pages + s_pages) * 2).div_ceil(partitions) * partitions;
    let region_out = Region::new(r_pages + s_pages, out_len);
    let fill_r = os.add_thread(region_fill(region_r, window));
    let fill_s = os.add_thread(region_fill(region_s, window));
    os.add_thread_after(
        Box::new(GraceHashJoin::new(region_r, region_s, region_out, partitions, window)),
        vec![fill_r, fill_s],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_disjoint() {
        let j = GraceHashJoin::new(
            Region::new(0, 16),
            Region::new(16, 16),
            Region::new(32, 32),
            4,
            4,
        );
        assert_eq!(j.bucket_capacity(), 8);
        assert_eq!(j.total_input(), 32);
        assert_eq!(j.input_lpn(0), 0);
        assert_eq!(j.input_lpn(15), 15);
        assert_eq!(j.input_lpn(16), 16);
        assert_eq!(j.input_lpn(31), 31);
    }

    #[test]
    fn probe_walks_filled_buckets_only() {
        let mut j = GraceHashJoin::new(
            Region::new(0, 8),
            Region::new(8, 8),
            Region::new(16, 16),
            2,
            4,
        );
        j.bucket_cursor = vec![3, 2];
        assert_eq!(j.probe_lpn(0), Some(16));
        assert_eq!(j.probe_lpn(2), Some(18));
        assert_eq!(j.probe_lpn(3), Some(24)); // second bucket slice
        assert_eq!(j.probe_lpn(4), Some(25));
        assert_eq!(j.probe_lpn(5), None);
    }

    #[test]
    #[should_panic(expected = "output region must hold")]
    fn undersized_output_rejected() {
        GraceHashJoin::new(
            Region::new(0, 16),
            Region::new(16, 16),
            Region::new(32, 8),
            2,
            2,
        );
    }
}
