//! Tenant-profile builder: describe a tenant (namespace size, QoS
//! parameters, member workload threads) declaratively and install it onto
//! an [`Os`] in one call.
//!
//! ```
//! use eagletree_workloads::{TenantProfile, Pumped, RandReadGen, Region};
//! # use eagletree_controller::{Controller, ControllerConfig};
//! # use eagletree_flash::{Geometry, TimingSpec};
//! # use eagletree_os::{Os, OsConfig};
//! # let ctrl = Controller::new(Geometry::tiny(), TimingSpec::slc(),
//! #     ControllerConfig::default()).unwrap();
//! # let mut os = Os::new(ctrl, OsConfig::default());
//! let (tenant, threads) = TenantProfile::new("frontend", 512)
//!     .weight(4)
//!     .tier(0)
//!     .thread(Pumped::new(RandReadGen::new(Region::whole(), 100), 4, 7))
//!     .install(&mut os);
//! os.run();
//! assert_eq!(os.tenant_stats(tenant).reads_completed, 100);
//! # let _ = threads;
//! ```

use eagletree_os::{Os, TenantConfig, TenantId, ThreadId, Workload};

/// A declarative tenant description: namespace + QoS + workloads.
pub struct TenantProfile {
    cfg: TenantConfig,
    threads: Vec<Box<dyn Workload>>,
}

impl TenantProfile {
    /// A tenant with a namespace of `pages` logical pages and default QoS
    /// parameters (weight 1, tier 0, no rate caps).
    pub fn new(name: impl Into<String>, pages: u64) -> Self {
        TenantProfile {
            cfg: TenantConfig::new(name, pages),
            threads: Vec::new(),
        }
    }

    /// WFQ weight (dispatch share under [`eagletree_os::QosPolicy::Wfq`]).
    pub fn weight(mut self, w: u32) -> Self {
        self.cfg.qos.weight = w;
        self
    }

    /// Strict-tier priority, 0 = most important.
    pub fn tier(mut self, t: u8) -> Self {
        self.cfg.qos.tier = t;
        self
    }

    /// IOPS cap (token bucket).
    pub fn iops_limit(mut self, limit: f64) -> Self {
        self.cfg.qos.iops_limit = Some(limit);
        self
    }

    /// Page-bandwidth cap in pages/second (token bucket).
    pub fn page_bw_limit(mut self, limit: f64) -> Self {
        self.cfg.qos.page_bw_limit = Some(limit);
        self
    }

    /// Burst credits for the token buckets.
    pub fn burst(mut self, credits: f64) -> Self {
        self.cfg.qos.burst = credits;
        self
    }

    /// Add a workload thread. Its IOs address the tenant's namespace
    /// (`ThreadCtx::logical_pages` reports the namespace size, so
    /// [`crate::Region::whole`] resolves to exactly the namespace).
    pub fn thread(mut self, w: impl Workload + 'static) -> Self {
        self.threads.push(Box::new(w));
        self
    }

    /// Create the tenant on `os` and register its threads. Returns the
    /// tenant id and the thread ids in the order they were added.
    pub fn install(self, os: &mut Os) -> (TenantId, Vec<ThreadId>) {
        let tenant = os.add_tenant(self.cfg);
        let tids = self
            .threads
            .into_iter()
            .map(|w| os.add_tenant_thread(tenant, w))
            .collect();
        (tenant, tids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pumped, RandWriteGen, Region};
    use eagletree_controller::{Controller, ControllerConfig};
    use eagletree_flash::{Geometry, TimingSpec};
    use eagletree_os::{Os, OsConfig, QosPolicy};

    fn os(qos: QosPolicy) -> Os {
        let ctrl = Controller::new(
            Geometry::tiny(),
            TimingSpec::slc(),
            ControllerConfig::default(),
        )
        .unwrap();
        Os::new(ctrl, OsConfig { qos, ..OsConfig::default() })
    }

    #[test]
    fn profile_installs_tenant_and_threads() {
        let mut os = os(QosPolicy::Wfq);
        let (a, a_tids) = TenantProfile::new("a", 128)
            .weight(3)
            .thread(Pumped::new(RandWriteGen::new(Region::whole(), 64), 8, 1).named("w1"))
            .thread(Pumped::new(RandWriteGen::new(Region::whole(), 32), 8, 2).named("w2"))
            .install(&mut os);
        let (b, _) = TenantProfile::new("b", 64)
            .thread(Pumped::new(RandWriteGen::new(Region::whole(), 16), 4, 3))
            .install(&mut os);
        assert_eq!(a_tids.len(), 2);
        os.run();
        assert_eq!(os.tenant_stats(a).writes_completed, 96);
        assert_eq!(os.tenant_stats(b).writes_completed, 16);
        assert_eq!(os.namespace(b).base, 128);
        // Region::whole() resolved to the namespace: every write stayed in
        // the tenant window.
        assert!(os.tenant_stats(b).valid_pages() <= 64);
    }

    #[test]
    fn rate_caps_flow_into_qos_params() {
        let mut os = os(QosPolicy::TokenBucket);
        let (t, _) = TenantProfile::new("capped", 64)
            .iops_limit(5_000.0)
            .page_bw_limit(5_000.0)
            .burst(2.0)
            .thread(Pumped::new(RandWriteGen::new(Region::whole(), 20), 8, 9))
            .install(&mut os);
        os.run();
        assert_eq!(os.tenant_stats(t).writes_completed, 20);
        // 20 IOs at 5k IOPS (burst 2) need ≥ ~3.6ms of virtual time.
        assert!(os.now().as_nanos() >= 3_600_000);
    }
}
