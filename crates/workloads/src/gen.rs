//! Composable IO generators.
//!
//! An [`IoGen`] produces one IO at a time; [`Pumped`] turns it into a
//! [`Workload`] thread that keeps a bounded number of IOs in flight
//! (modelling per-thread asynchronous submission) and finishes when the
//! generator is exhausted.

use eagletree_controller::{IoTags, RequestKind};
use eagletree_core::{SimRng, Zipf};
use eagletree_os::{CompletedIo, OsIo, ThreadCtx, Workload};

/// A contiguous logical-page region `[start, start+len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub start: u64,
    pub len: u64,
}

impl Region {
    /// The whole device address space (resolved against the context).
    pub fn whole() -> Region {
        Region { start: 0, len: 0 }
    }

    /// A fixed region.
    pub fn new(start: u64, len: u64) -> Region {
        Region { start, len }
    }

    fn resolve(&self, logical_pages: u64) -> (u64, u64) {
        if self.len == 0 {
            (0, logical_pages)
        } else {
            debug_assert!(self.start + self.len <= logical_pages);
            (self.start, self.len)
        }
    }
}

/// A stream of IOs.
pub trait IoGen: Send {
    /// Produce the next IO, or `None` when exhausted.
    fn next_io(&mut self, rng: &mut SimRng, logical_pages: u64) -> Option<OsIo>;
}

/// Sequential writes over a region, `count` in total (wrapping).
#[derive(Debug, Clone)]
pub struct SeqWriteGen {
    pub region: Region,
    pub count: u64,
    issued: u64,
}

impl SeqWriteGen {
    pub fn new(region: Region, count: u64) -> Self {
        SeqWriteGen {
            region,
            count,
            issued: 0,
        }
    }
}

impl IoGen for SeqWriteGen {
    fn next_io(&mut self, _rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        let (start, len) = self.region.resolve(logical_pages);
        let lpn = start + self.issued % len;
        self.issued += 1;
        Some(OsIo::write(lpn))
    }
}

/// Uniform random writes over a region.
#[derive(Debug, Clone)]
pub struct RandWriteGen {
    pub region: Region,
    pub count: u64,
    issued: u64,
}

impl RandWriteGen {
    pub fn new(region: Region, count: u64) -> Self {
        RandWriteGen {
            region,
            count,
            issued: 0,
        }
    }
}

impl IoGen for RandWriteGen {
    fn next_io(&mut self, rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        self.issued += 1;
        let (start, len) = self.region.resolve(logical_pages);
        Some(OsIo::write(start + rng.gen_range(len)))
    }
}

/// Sequential reads over a region.
#[derive(Debug, Clone)]
pub struct SeqReadGen {
    pub region: Region,
    pub count: u64,
    issued: u64,
}

impl SeqReadGen {
    pub fn new(region: Region, count: u64) -> Self {
        SeqReadGen {
            region,
            count,
            issued: 0,
        }
    }
}

impl IoGen for SeqReadGen {
    fn next_io(&mut self, _rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        let (start, len) = self.region.resolve(logical_pages);
        let lpn = start + self.issued % len;
        self.issued += 1;
        Some(OsIo::read(lpn))
    }
}

/// Uniform random reads over a region.
#[derive(Debug, Clone)]
pub struct RandReadGen {
    pub region: Region,
    pub count: u64,
    issued: u64,
}

impl RandReadGen {
    pub fn new(region: Region, count: u64) -> Self {
        RandReadGen {
            region,
            count,
            issued: 0,
        }
    }
}

impl IoGen for RandReadGen {
    fn next_io(&mut self, rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        self.issued += 1;
        let (start, len) = self.region.resolve(logical_pages);
        Some(OsIo::read(start + rng.gen_range(len)))
    }
}

/// Random mixed reads/writes with a configurable read fraction.
#[derive(Debug, Clone)]
pub struct MixedGen {
    pub region: Region,
    pub count: u64,
    pub read_fraction: f64,
    issued: u64,
}

impl MixedGen {
    pub fn new(region: Region, count: u64, read_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_fraction));
        MixedGen {
            region,
            count,
            read_fraction,
            issued: 0,
        }
    }
}

impl IoGen for MixedGen {
    fn next_io(&mut self, rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        self.issued += 1;
        let (start, len) = self.region.resolve(logical_pages);
        let lpn = start + rng.gen_range(len);
        Some(if rng.gen_bool(self.read_fraction) {
            OsIo::read(lpn)
        } else {
            OsIo::write(lpn)
        })
    }
}

/// What a Zipf generator issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfKind {
    Reads,
    Writes,
    /// Mixed with the given percentage of reads.
    Mixed(u8),
}

/// Zipf-skewed accesses: rank 0 = hottest page. Optionally tags each IO
/// with a temperature hint (hot for the top `hot_fraction` of ranks),
/// exercising the open interface.
pub struct ZipfGen {
    pub region: Region,
    pub count: u64,
    pub kind: ZipfKind,
    /// Attach temperature hints when set: ranks below
    /// `hot_fraction × population` are tagged hot, the rest cold.
    pub hint_hot_fraction: Option<f64>,
    theta: f64,
    zipf: Option<(u64, Zipf)>,
    issued: u64,
}

impl ZipfGen {
    pub fn new(region: Region, count: u64, theta: f64, kind: ZipfKind) -> Self {
        ZipfGen {
            region,
            count,
            kind,
            hint_hot_fraction: None,
            theta,
            zipf: None,
            issued: 0,
        }
    }

    /// Enable open-interface temperature hints.
    pub fn with_temperature_hints(mut self, hot_fraction: f64) -> Self {
        self.hint_hot_fraction = Some(hot_fraction);
        self
    }
}

impl IoGen for ZipfGen {
    fn next_io(&mut self, rng: &mut SimRng, logical_pages: u64) -> Option<OsIo> {
        if self.issued >= self.count {
            return None;
        }
        self.issued += 1;
        let (start, len) = self.region.resolve(logical_pages);
        if self.zipf.as_ref().map(|(n, _)| *n) != Some(len) {
            self.zipf = Some((len, Zipf::new(len as usize, self.theta)));
        }
        let (_, zipf) = self.zipf.as_ref().unwrap();
        let rank = zipf.sample(rng) as u64;
        // Scatter ranks over the region deterministically so the hot set
        // is not one contiguous run (multiplicative hashing by a prime).
        let lpn = start + (rank.wrapping_mul(2_654_435_761) % len);
        let kind = match self.kind {
            ZipfKind::Reads => RequestKind::Read,
            ZipfKind::Writes => RequestKind::Write,
            ZipfKind::Mixed(pct) => {
                if rng.gen_bool(pct as f64 / 100.0) {
                    RequestKind::Read
                } else {
                    RequestKind::Write
                }
            }
        };
        let mut tags = IoTags::none();
        if let Some(f) = self.hint_hot_fraction {
            let hot = (rank as f64) < f * len as f64;
            tags = tags.with_temperature(if hot {
                eagletree_controller::Temperature::Hot
            } else {
                eagletree_controller::Temperature::Cold
            });
        }
        Some(OsIo { kind, lpn, tags })
    }
}

/// Drives an [`IoGen`] as a thread with a bounded in-flight window.
pub struct Pumped<G: IoGen> {
    gen: G,
    rng: SimRng,
    window: u64,
    outstanding: u64,
    exhausted: bool,
    name: String,
    /// Extra tags merged onto every IO (e.g. a thread-wide priority).
    pub tags: IoTags,
}

impl<G: IoGen> Pumped<G> {
    /// A thread issuing from `gen`, keeping up to `window` IOs in flight.
    pub fn new(gen: G, window: u64, seed: u64) -> Self {
        assert!(window > 0, "window must be positive");
        Pumped {
            gen,
            rng: SimRng::new(seed),
            window,
            outstanding: 0,
            exhausted: false,
            name: "pumped".to_string(),
            tags: IoTags::none(),
        }
    }

    /// Name the thread for reports.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Merge `tags` onto every IO this thread submits.
    pub fn tagged(mut self, tags: IoTags) -> Self {
        self.tags = tags;
        self
    }

    fn merge_tags(&self, io: OsIo) -> OsIo {
        let mut t = io.tags;
        if t.priority.is_none() {
            t.priority = self.tags.priority;
        }
        if t.temperature.is_none() {
            t.temperature = self.tags.temperature;
        }
        if t.locality_group.is_none() {
            t.locality_group = self.tags.locality_group;
        }
        io.tagged(t)
    }

    fn feed(&mut self, ctx: &mut ThreadCtx) {
        while self.outstanding < self.window && !self.exhausted {
            match self.gen.next_io(&mut self.rng, ctx.logical_pages()) {
                Some(io) => {
                    let io = self.merge_tags(io);
                    ctx.submit(io);
                    self.outstanding += 1;
                }
                None => self.exhausted = true,
            }
        }
        if self.exhausted && self.outstanding == 0 {
            ctx.finish();
        }
    }
}

impl<G: IoGen> Workload for Pumped<G> {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.feed(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        debug_assert!(self.outstanding > 0);
        self.outstanding -= 1;
        self.feed(ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<G: IoGen>(gen: &mut G, n: usize) -> Vec<OsIo> {
        let mut rng = SimRng::new(1);
        (0..n).filter_map(|_| gen.next_io(&mut rng, 1000)).collect()
    }

    #[test]
    fn seq_write_gen_is_sequential_and_bounded() {
        let mut g = SeqWriteGen::new(Region::new(10, 5), 7);
        let ios = drain(&mut g, 100);
        assert_eq!(ios.len(), 7);
        let lpns: Vec<u64> = ios.iter().map(|i| i.lpn).collect();
        assert_eq!(lpns, vec![10, 11, 12, 13, 14, 10, 11]); // wraps
        assert!(ios.iter().all(|i| i.kind == RequestKind::Write));
    }

    #[test]
    fn rand_gens_stay_in_region() {
        let mut g = RandWriteGen::new(Region::new(100, 50), 500);
        for io in drain(&mut g, 500) {
            assert!((100..150).contains(&io.lpn));
        }
        let mut g = RandReadGen::new(Region::whole(), 100);
        for io in drain(&mut g, 100) {
            assert!(io.lpn < 1000);
            assert_eq!(io.kind, RequestKind::Read);
        }
    }

    #[test]
    fn mixed_gen_ratio_approximates() {
        let mut g = MixedGen::new(Region::whole(), 10_000, 0.7);
        let ios = drain(&mut g, 10_000);
        let reads = ios.iter().filter(|i| i.kind == RequestKind::Read).count();
        assert!((6_300..7_700).contains(&reads), "reads={reads}");
    }

    #[test]
    fn zipf_gen_concentrates_accesses() {
        let mut g = ZipfGen::new(Region::whole(), 20_000, 0.99, ZipfKind::Writes);
        let ios = drain(&mut g, 20_000);
        let mut counts = std::collections::BTreeMap::new();
        for io in &ios {
            *counts.entry(io.lpn).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > 20_000 / 100,
            "hottest page only {max} hits — not skewed"
        );
    }

    #[test]
    fn zipf_hints_tag_hot_and_cold() {
        let mut g = ZipfGen::new(Region::whole(), 5_000, 0.99, ZipfKind::Writes)
            .with_temperature_hints(0.1);
        let ios = drain(&mut g, 5_000);
        use eagletree_controller::Temperature;
        let hot = ios
            .iter()
            .filter(|i| i.tags.temperature == Some(Temperature::Hot))
            .count();
        let cold = ios
            .iter()
            .filter(|i| i.tags.temperature == Some(Temperature::Cold))
            .count();
        assert_eq!(hot + cold, 5_000);
        assert!(hot > cold, "zipf mass should be concentrated on hot ranks");
    }

    #[test]
    fn pumped_merges_thread_tags() {
        let p = Pumped::new(SeqWriteGen::new(Region::whole(), 1), 1, 0)
            .tagged(IoTags::none().with_priority(2));
        let io = p.merge_tags(OsIo::write(0));
        assert_eq!(io.tags.priority, Some(2));
        // Per-IO tags win.
        let io = p.merge_tags(OsIo::write(0).tagged(IoTags::none().with_priority(7)));
        assert_eq!(io.tags.priority, Some(7));
    }

    #[test]
    fn gens_return_none_when_exhausted() {
        let mut rng = SimRng::new(0);
        let mut g = SeqReadGen::new(Region::whole(), 2);
        assert!(g.next_io(&mut rng, 10).is_some());
        assert!(g.next_io(&mut rng, 10).is_some());
        assert!(g.next_io(&mut rng, 10).is_none());
        assert!(g.next_io(&mut rng, 10).is_none());
    }
}
