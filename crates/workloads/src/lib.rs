//! # eagletree-workloads
//!
//! Workload threads for EagleTree: implementations of the OS layer's
//! [`Workload`](eagletree_os::Workload) trait covering the paper's
//! application scenarios.
//!
//! * [`gen`] — composable IO generators ([`Pumped`] drives any [`IoGen`]
//!   with a bounded per-thread window): sequential/random reads and
//!   writes, mixed ratios, Zipf hot/cold patterns, tagged variants for
//!   open-interface experiments.
//! * [`precondition`] — bring the SSD to a well-defined state before
//!   measuring (sequential and random full-space fills, per uFLIP
//!   methodology and §2.3).
//! * [`grace_join`] — "a thread that follows the IO pattern of Grace hash
//!   join" (§2.2): partition fan-out writes, then per-partition probe
//!   reads.
//! * [`fs`] — "threads simulating the behavior of a file system" (§2.2):
//!   create/append/delete over extents with metadata updates.
//! * [`lsm`] — LSM-tree insertions (the paper's motivating example §1):
//!   memtable flushes plus leveled compactions.
//! * [`blktrace`] — the block-trace frontend: streaming MSR-Cambridge CSV
//!   parsing behind the [`TraceSource`] trait, chunked bounded-memory
//!   prefetch, LBA remapping into a namespace, a trace characterizer
//!   (footprint / mix / Zipf skew / burstiness) and matched synthesis.
//! * [`trace`] — replay: the closed-loop [`TraceThread`] list replayer and
//!   the production [`ReplayThread`] (open-loop at recorded timestamps
//!   with time-warp, or closed-loop preserving think times).
//! * [`tenant`] — the tenant-profile builder: declare a tenant's
//!   namespace, QoS parameters and member threads, then install the whole
//!   profile onto an [`Os`](eagletree_os::Os) in one call (the
//!   multi-tenant experiments' setup vocabulary).

#![forbid(unsafe_code)]

pub mod blktrace;
pub mod fs;
pub mod gen;
pub mod grace_join;
pub mod lsm;
pub mod precondition;
pub mod tenant;
pub mod trace;

pub use blktrace::{
    characterize, to_msr_csv_line, ChunkedSource, MsrCsvSource, Remap, SynthCsv, SynthShape,
    SyntheticTrace, TraceProfile, TraceSource,
};
pub use fs::FileSystemThread;
pub use gen::{
    IoGen, MixedGen, Pumped, RandReadGen, RandWriteGen, Region, SeqReadGen, SeqWriteGen,
    ZipfGen, ZipfKind,
};
pub use grace_join::GraceHashJoin;
pub use lsm::LsmTreeThread;
pub use precondition::{random_fill, sequential_fill};
pub use tenant::TenantProfile;
pub use trace::{ReplayMode, ReplayThread, TraceEntry, TraceThread};
