//! IO-trace record and replay.
//!
//! Two replayers live here:
//!
//! * [`TraceThread`] — the original closed-loop list replayer: an explicit
//!   in-memory list of IOs with per-entry think times, dispatched serially
//!   (each entry after the previous completion plus its delay). Useful for
//!   regression experiments where the exact IO sequence must be pinned.
//! * [`ReplayThread`] — the production-trace replayer over any streaming
//!   [`TraceSource`] (see [`crate::blktrace`]). In **open-loop** mode IOs
//!   dispatch at their recorded arrival timestamps via the OS timer
//!   machinery — load is what the trace says, regardless of device
//!   latency, so queues can actually build — with a time-warp factor to
//!   accelerate (or stretch) the recorded clock. In **closed-loop** mode
//!   the recorded inter-arrival gaps are preserved as think times after
//!   each record's completions, the classic feedback-limited replay.

use eagletree_core::{BlkOp, BlkRecord, SimDuration, SimTime};
use eagletree_os::{CompletedIo, OsIo, ThreadCtx, Workload};

use crate::blktrace::TraceSource;

/// One replayed IO with its preceding think time.
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Think time after the previous completion (zero = immediately).
    pub delay: SimDuration,
    /// The IO to issue.
    pub io: OsIo,
}

impl TraceEntry {
    /// An entry with no think time.
    pub fn immediate(io: OsIo) -> Self {
        TraceEntry {
            delay: SimDuration::ZERO,
            io,
        }
    }

    /// An entry issued `delay` after the previous completion.
    pub fn after(delay: SimDuration, io: OsIo) -> Self {
        TraceEntry { delay, io }
    }
}

/// Serial trace replayer.
pub struct TraceThread {
    entries: Vec<TraceEntry>,
    next: usize,
}

impl TraceThread {
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        TraceThread { entries, next: 0 }
    }

    fn advance(&mut self, ctx: &mut ThreadCtx) {
        match self.entries.get(self.next) {
            None => ctx.finish(),
            Some(e) => {
                if e.delay == SimDuration::ZERO {
                    let io = e.io;
                    self.next += 1;
                    ctx.submit(io);
                } else {
                    ctx.set_timer(e.delay);
                }
            }
        }
    }
}

impl Workload for TraceThread {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.advance(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        self.advance(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ThreadCtx) {
        // Bounds-checked like `advance`: a timer that fires after the
        // entry list is exhausted (e.g. a duplicate timer from a wrapping
        // workload) finishes the thread instead of panicking.
        match self.entries.get(self.next) {
            None => ctx.finish(),
            Some(e) => {
                let io = e.io;
                self.next += 1;
                ctx.submit(io);
            }
        }
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

/// How a [`ReplayThread`] paces the trace.
#[derive(Debug, Clone, Copy)]
pub enum ReplayMode {
    /// Dispatch each record at `recorded_arrival / warp`, independent of
    /// completions. `warp > 1` accelerates the recorded clock.
    OpenLoop { warp: f64 },
    /// Dispatch each record after the previous record's completions plus
    /// the (warped) recorded inter-arrival gap — think times preserved.
    ClosedLoop { warp: f64 },
}

/// Replays a streaming [`TraceSource`] against the OS.
///
/// Records are pulled one at a time (memory stays bounded by the source —
/// wrap it in a [`crate::blktrace::ChunkedSource`] for chunked prefetch),
/// split into per-page IOs, and folded into the thread's address space
/// (`page % logical_pages`), which for a tenant thread is its namespace.
/// Fixed-point denominator for the integer time-warp division:
/// ~1e-6 relative precision, a power of two so integer and dyadic
/// warp factors (1, 2, 4, 100.0, …) divide exactly.
const WARP_SCALE: u64 = 1 << 20;

pub struct ReplayThread<S> {
    src: S,
    mode: ReplayMode,
    /// `warp * WARP_SCALE`, rounded once at construction.
    warp_fp: u64,
    pending: Option<BlkRecord>,
    outstanding: u64,
    submitted: u64,
    last_at: SimTime,
    drained: bool,
    finished: bool,
    name: String,
}

impl<S: TraceSource> ReplayThread<S> {
    /// Open-loop replay with a time-warp factor (`warp > 1` accelerates).
    pub fn open_loop(src: S, warp: f64) -> Self {
        Self::new(src, ReplayMode::OpenLoop { warp })
    }

    /// Closed-loop replay preserving (warped) recorded think times.
    pub fn closed_loop(src: S, warp: f64) -> Self {
        Self::new(src, ReplayMode::ClosedLoop { warp })
    }

    pub fn new(src: S, mode: ReplayMode) -> Self {
        let warp = match mode {
            ReplayMode::OpenLoop { warp } | ReplayMode::ClosedLoop { warp } => warp,
        };
        assert!(
            warp.is_finite() && warp > 0.0,
            "time-warp factor must be positive"
        );
        // One-time quantization of the configured warp factor; every
        // per-record arrival below is computed in integer nanoseconds
        // against this fixed-point value, so the replayed timeline is
        // exact and platform-independent (R3 discipline).
        // lint:allow(R3) one-time fixed-point quantization of a config knob at construction, not per-event time math
        let warp_fp = ((warp * WARP_SCALE as f64).round() as u64).max(1);
        ReplayThread {
            src,
            mode,
            warp_fp,
            pending: None,
            outstanding: 0,
            submitted: 0,
            last_at: SimTime::ZERO,
            drained: false,
            finished: false,
            name: "replay".to_string(),
        }
    }

    /// Override the reported thread name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Per-page IOs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// `ns / warp` in integer arithmetic: round-to-nearest against the
    /// fixed-point factor, saturating instead of wrapping when a
    /// slow-down warp (< 1) would push past the `u64` horizon.
    fn warp_ns(&self, ns: u64) -> u64 {
        let num = ns as u128 * WARP_SCALE as u128 + self.warp_fp as u128 / 2;
        (num / self.warp_fp as u128).min(u64::MAX as u128) as u64
    }

    fn warped_instant(&self, at: SimTime) -> SimTime {
        SimTime::from_nanos(self.warp_ns(at.as_nanos()))
    }

    fn warped_gap(&self, gap: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.warp_ns(gap.as_nanos()))
    }

    fn submit_record(&mut self, ctx: &mut ThreadCtx, rec: BlkRecord) {
        let space = ctx.logical_pages().max(1);
        for i in 0..rec.pages as u64 {
            let lpn = (rec.page + i) % space;
            let io = match rec.op {
                BlkOp::Read => OsIo::read(lpn),
                BlkOp::Write => OsIo::write(lpn),
                BlkOp::Trim => OsIo::trim(lpn),
            };
            ctx.submit(io);
            self.outstanding += 1;
            self.submitted += 1;
        }
    }

    fn maybe_finish(&mut self, ctx: &mut ThreadCtx) {
        if self.drained && self.pending.is_none() && self.outstanding == 0 && !self.finished {
            self.finished = true;
            ctx.finish();
        }
    }

    fn pull(&mut self) -> Option<BlkRecord> {
        if let Some(rec) = self.pending.take() {
            return Some(rec);
        }
        let rec = self.src.next_record();
        if rec.is_none() {
            self.drained = true;
        }
        rec
    }

    /// Open loop: submit everything due at `now`, then arm one timer for
    /// the next record's (warped) arrival instant.
    fn pump_open(&mut self, ctx: &mut ThreadCtx) {
        while let Some(rec) = self.pull() {
            let due = self.warped_instant(rec.at);
            if due <= ctx.now() {
                self.submit_record(ctx, rec);
            } else {
                self.pending = Some(rec);
                ctx.set_timer_at(due);
                break;
            }
        }
        self.maybe_finish(ctx);
    }

    /// Closed loop: once the previous record fully completed, wait out the
    /// recorded gap (as a think time), then submit the next record.
    fn advance_closed(&mut self, ctx: &mut ThreadCtx) {
        match self.pull() {
            None => self.maybe_finish(ctx),
            Some(rec) => {
                let gap = self.warped_gap(rec.at.saturating_since(self.last_at));
                self.last_at = rec.at;
                if gap == SimDuration::ZERO {
                    self.submit_record(ctx, rec);
                } else {
                    self.pending = Some(rec);
                    ctx.set_timer(gap);
                }
            }
        }
    }
}

impl<S: TraceSource> Workload for ReplayThread<S> {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        match self.mode {
            ReplayMode::OpenLoop { .. } => self.pump_open(ctx),
            ReplayMode::ClosedLoop { .. } => self.advance_closed(ctx),
        }
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        self.outstanding = self.outstanding.saturating_sub(1);
        match self.mode {
            ReplayMode::OpenLoop { .. } => self.maybe_finish(ctx),
            ReplayMode::ClosedLoop { .. } => {
                if self.outstanding == 0 && self.pending.is_none() {
                    self.advance_closed(ctx);
                } else {
                    self.maybe_finish(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ThreadCtx) {
        match self.mode {
            ReplayMode::OpenLoop { .. } => self.pump_open(ctx),
            ReplayMode::ClosedLoop { .. } => {
                if let Some(rec) = self.pending.take() {
                    self.submit_record(ctx, rec);
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = TraceEntry::immediate(OsIo::write(3));
        assert_eq!(e.delay, SimDuration::ZERO);
        let e = TraceEntry::after(SimDuration::from_micros(10), OsIo::read(1));
        assert_eq!(e.delay.as_nanos(), 10_000);
    }

    #[test]
    fn replay_warp_scales_the_recorded_clock() {
        struct Empty;
        impl TraceSource for Empty {
            fn next_record(&mut self) -> Option<BlkRecord> {
                None
            }
        }
        let t = ReplayThread::open_loop(Empty, 4.0);
        assert_eq!(
            t.warped_instant(SimTime::from_nanos(1_000)).as_nanos(),
            250
        );
        assert_eq!(t.warped_gap(SimDuration::from_nanos(1_000)).as_nanos(), 250);
    }

    #[test]
    #[should_panic(expected = "time-warp factor must be positive")]
    fn replay_rejects_nonpositive_warp() {
        struct Empty;
        impl TraceSource for Empty {
            fn next_record(&mut self) -> Option<BlkRecord> {
                None
            }
        }
        let _ = ReplayThread::open_loop(Empty, 0.0);
    }
}
