//! IO-trace record and replay.
//!
//! A [`TraceThread`] replays an explicit list of IOs with per-entry think
//! times, serially (each entry dispatches after the previous completion
//! plus its delay). Useful for regression experiments where the exact IO
//! sequence must be pinned, and for replaying synthetic traces produced by
//! other tools.

use eagletree_core::SimDuration;
use eagletree_os::{CompletedIo, OsIo, ThreadCtx, Workload};

/// One replayed IO with its preceding think time.
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Think time after the previous completion (zero = immediately).
    pub delay: SimDuration,
    /// The IO to issue.
    pub io: OsIo,
}

impl TraceEntry {
    /// An entry with no think time.
    pub fn immediate(io: OsIo) -> Self {
        TraceEntry {
            delay: SimDuration::ZERO,
            io,
        }
    }

    /// An entry issued `delay` after the previous completion.
    pub fn after(delay: SimDuration, io: OsIo) -> Self {
        TraceEntry { delay, io }
    }
}

/// Serial trace replayer.
pub struct TraceThread {
    entries: Vec<TraceEntry>,
    next: usize,
}

impl TraceThread {
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        TraceThread { entries, next: 0 }
    }

    fn advance(&mut self, ctx: &mut ThreadCtx) {
        match self.entries.get(self.next) {
            None => ctx.finish(),
            Some(e) => {
                if e.delay == SimDuration::ZERO {
                    let io = e.io;
                    self.next += 1;
                    ctx.submit(io);
                } else {
                    ctx.set_timer(e.delay);
                }
            }
        }
    }
}

impl Workload for TraceThread {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.advance(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        self.advance(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ThreadCtx) {
        let e = self.entries[self.next];
        self.next += 1;
        ctx.submit(e.io);
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = TraceEntry::immediate(OsIo::write(3));
        assert_eq!(e.delay, SimDuration::ZERO);
        let e = TraceEntry::after(SimDuration::from_micros(10), OsIo::read(1));
        assert_eq!(e.delay.as_nanos(), 10_000);
    }
}
