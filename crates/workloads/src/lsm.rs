//! LSM-tree insertion workload.
//!
//! The paper's opening example of an SSD-based algorithm worth studying
//! ("say … LSM-tree insertions", §1). Inserts accumulate in a RAM memtable
//! (no IO); each full memtable *flushes* as a sequential run to level 0;
//! when a level accumulates `fanout` runs they are *compacted*: every page
//! of the level is read, the merge result is written as one run to the
//! next level, and the old runs are trimmed. The resulting IO pattern —
//! bursts of large sequential writes punctuated by read-heavy compactions
//! that rewrite ever-larger runs — is the classic LSM stress on an FTL.

use eagletree_os::{CompletedIo, OsIo, ThreadCtx, Workload};

use crate::gen::Region;

#[derive(Debug, Clone)]
struct Run {
    pages: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Level {
    runs: Vec<Run>,
    free_slots: Vec<u64>, // page pool for this level
}

/// An LSM-tree insertion thread.
pub struct LsmTreeThread {
    memtable_pages: u64,
    fanout: usize,
    inserts_left: u64,
    levels: Vec<Level>,
    window: u64,
    in_flight: u64,
    queue: std::collections::VecDeque<OsIo>,
    /// Flushes performed.
    pub flushes: u64,
    /// Compactions performed (per occurrence, any level).
    pub compactions: u64,
    total_pages_per_level: Vec<u64>,
}

impl LsmTreeThread {
    /// An LSM tree inside `region`: `levels` levels with the given
    /// `fanout`, memtables of `memtable_pages`, performing
    /// `inserts` page-inserts in total.
    ///
    /// Level `i` holds up to `fanout^(i+1)` memtables' worth of pages; the
    /// region must be large enough for all levels (checked).
    pub fn new(
        region: Region,
        levels: usize,
        fanout: usize,
        memtable_pages: u64,
        inserts: u64,
        window: u64,
    ) -> Self {
        assert!(levels >= 1 && fanout >= 2 && memtable_pages >= 1 && window >= 1);
        // Capacity per level: fanout runs of run_size(level); run at level
        // i has memtable_pages × fanout^i pages. Reserve an extra run of
        // slack per level because the merge target is written before the
        // old runs are trimmed.
        let mut needed = 0u64;
        let mut level_caps = Vec::new();
        for i in 0..levels {
            let run = memtable_pages * (fanout as u64).pow(i as u32);
            let cap = run * (fanout as u64 + 1);
            level_caps.push(cap);
            needed += cap;
        }
        assert!(
            region.len >= needed,
            "region holds {} pages but the tree needs {}",
            region.len,
            needed
        );
        let mut next = region.start;
        let mut total_pages_per_level = Vec::new();
        let levels_vec = level_caps
            .iter()
            .map(|&cap| {
                let slots: Vec<u64> = (next..next + cap).collect();
                next += cap;
                total_pages_per_level.push(cap);
                Level {
                    runs: Vec::new(),
                    free_slots: slots,
                }
            })
            .collect();
        LsmTreeThread {
            memtable_pages,
            fanout,
            inserts_left: inserts,
            levels: levels_vec,
            window,
            in_flight: 0,
            queue: std::collections::VecDeque::new(),
            flushes: 0,
            compactions: 0,
            total_pages_per_level,
        }
    }

    /// Allocate `n` pages from a level's pool.
    fn alloc_pages(&mut self, level: usize, n: u64) -> Vec<u64> {
        let pool = &mut self.levels[level].free_slots;
        assert!(
            pool.len() as u64 >= n,
            "level {level} pool exhausted (invariant bug)"
        );
        pool.drain(..n as usize).collect()
    }

    /// Plan the next batch of IOs: a flush, cascading compactions, or end.
    fn plan(&mut self) {
        if self.inserts_left == 0 {
            return;
        }
        let batch = self.memtable_pages.min(self.inserts_left);
        self.inserts_left -= batch;
        // Flush the memtable as a new L0 run.
        let pages = self.alloc_pages(0, batch);
        for &p in &pages {
            self.queue.push_back(OsIo::write(p));
        }
        self.levels[0].runs.push(Run { pages });
        self.flushes += 1;
        // Cascade compactions.
        for lvl in 0..self.levels.len() {
            if self.levels[lvl].runs.len() < self.fanout {
                break;
            }
            let is_last = lvl + 1 == self.levels.len();
            let old_runs = std::mem::take(&mut self.levels[lvl].runs);
            let merged_size: u64 = old_runs.iter().map(|r| r.pages.len() as u64).sum();
            // Read every input page.
            for r in &old_runs {
                for &p in &r.pages {
                    self.queue.push_back(OsIo::read(p));
                }
            }
            if is_last {
                // Bottom level compacts in place: rewrite into this level.
                let pages = self.alloc_pages(lvl, merged_size.min(
                    self.levels[lvl].free_slots.len() as u64,
                ));
                for &p in &pages {
                    self.queue.push_back(OsIo::write(p));
                }
                self.levels[lvl].runs.push(Run { pages });
            } else {
                let pages = self.alloc_pages(lvl + 1, merged_size);
                for &p in &pages {
                    self.queue.push_back(OsIo::write(p));
                }
                self.levels[lvl + 1].runs.push(Run { pages });
            }
            // Trim the old runs and return their slots.
            for r in old_runs {
                for p in r.pages {
                    self.queue.push_back(OsIo::trim(p));
                    self.levels[lvl].free_slots.push(p);
                }
            }
            self.compactions += 1;
        }
        let _ = &self.total_pages_per_level;
    }

    fn feed(&mut self, ctx: &mut ThreadCtx) {
        loop {
            while self.in_flight < self.window {
                if let Some(io) = self.queue.pop_front() {
                    ctx.submit(io);
                    self.in_flight += 1;
                } else {
                    break;
                }
            }
            if !self.queue.is_empty() || self.in_flight > 0 {
                return;
            }
            if self.inserts_left == 0 {
                ctx.finish();
                return;
            }
            self.plan();
        }
    }
}

impl Workload for LsmTreeThread {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.feed(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        self.feed(ctx);
    }

    fn name(&self) -> &str {
        "lsm-insertions"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> LsmTreeThread {
        // 2 levels, fanout 2, memtable 4 → L0 cap 12, L1 cap 24.
        LsmTreeThread::new(Region::new(0, 64), 2, 2, 4, 64, 4)
    }

    #[test]
    fn level_pools_are_disjoint() {
        let t = tree();
        let mut all: Vec<u64> = t
            .levels
            .iter()
            .flat_map(|l| l.free_slots.iter().copied())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "levels share page slots");
    }

    #[test]
    fn flush_plans_sequential_writes() {
        let mut t = tree();
        t.plan();
        assert_eq!(t.flushes, 1);
        assert_eq!(t.compactions, 0);
        let writes: Vec<_> = t.queue.iter().collect();
        assert_eq!(writes.len(), 4);
        assert!(writes
            .iter()
            .all(|io| io.kind == eagletree_controller::RequestKind::Write));
    }

    #[test]
    fn second_flush_triggers_compaction() {
        let mut t = tree();
        t.plan();
        t.queue.clear();
        t.plan();
        assert_eq!(t.flushes, 2);
        assert_eq!(t.compactions, 1, "fanout-2 L0 must compact on 2nd flush");
        use eagletree_controller::RequestKind::*;
        let kinds: Vec<_> = t.queue.iter().map(|io| io.kind).collect();
        let reads = kinds.iter().filter(|k| **k == Read).count();
        let writes = kinds.iter().filter(|k| **k == Write).count();
        let trims = kinds.iter().filter(|k| **k == Trim).count();
        assert_eq!(reads, 8, "compaction reads both runs");
        assert_eq!(writes, 4 + 8, "flush plus merged run");
        assert_eq!(trims, 8, "old runs trimmed");
    }

    #[test]
    #[should_panic(expected = "region holds")]
    fn undersized_region_rejected() {
        LsmTreeThread::new(Region::new(0, 10), 2, 2, 4, 100, 4);
    }
}
