//! A file-system-like thread (§2.2: "threads simulating the behavior of a
//! file system").
//!
//! The thread manages files inside its region: *create* writes data pages
//! plus a metadata update, *append* extends a file, *delete* trims the
//! file's pages and updates metadata. Metadata lives in a small dedicated
//! sub-region that is overwritten continuously — the classic hot/cold split
//! file systems impose on SSDs (hot journal + colder data), which makes
//! this thread a natural driver for temperature-aware policies.

use eagletree_core::SimRng;
use eagletree_os::{CompletedIo, OsIo, ThreadCtx, Workload};

use crate::gen::Region;

const METADATA_PAGES: u64 = 8;

#[derive(Debug, Clone)]
struct File {
    pages: Vec<u64>,
}

/// One logical file-system operation, expanded into IOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Create,
    Append,
    Delete,
}

/// A file-system workload thread.
pub struct FileSystemThread {
    region: Region,
    ops_left: u64,
    max_file_pages: u64,
    rng: SimRng,
    files: Vec<File>,
    free_lpns: Vec<u64>,
    batch_in_flight: u64,
    /// Completed operations by kind, for reports.
    pub creates: u64,
    pub appends: u64,
    pub deletes: u64,
}

impl FileSystemThread {
    /// A thread performing `ops` operations over `region` (the first
    /// `METADATA_PAGES` (8) pages of which hold metadata), with files of at
    /// most `max_file_pages` data pages.
    pub fn new(region: Region, ops: u64, max_file_pages: u64, seed: u64) -> Self {
        assert!(
            region.len > METADATA_PAGES + max_file_pages,
            "region too small for metadata plus one file"
        );
        let free_lpns = (region.start + METADATA_PAGES..region.start + region.len).collect();
        FileSystemThread {
            region,
            ops_left: ops,
            max_file_pages,
            rng: SimRng::new(seed),
            files: Vec::new(),
            free_lpns,
            batch_in_flight: 0,
            creates: 0,
            appends: 0,
            deletes: 0,
        }
    }

    fn metadata_lpn(&mut self) -> u64 {
        self.region.start + self.rng.gen_range(METADATA_PAGES)
    }

    /// Choose and expand the next operation into a batch of IOs.
    fn next_batch(&mut self, ctx: &mut ThreadCtx) {
        while self.ops_left > 0 {
            self.ops_left -= 1;
            let op = self.pick_op();
            let mut batch: Vec<OsIo> = Vec::new();
            match op {
                OpKind::Create => {
                    let want = 1 + self.rng.gen_range(self.max_file_pages);
                    let take = want.min(self.free_lpns.len() as u64);
                    if take == 0 {
                        continue; // disk full: skip to another op
                    }
                    let mut pages = Vec::with_capacity(take as usize);
                    for _ in 0..take {
                        let i = self.rng.gen_range(self.free_lpns.len() as u64) as usize;
                        pages.push(self.free_lpns.swap_remove(i));
                    }
                    for &p in &pages {
                        batch.push(OsIo::write(p));
                    }
                    batch.push(OsIo::write(self.metadata_lpn()));
                    self.files.push(File { pages });
                    self.creates += 1;
                }
                OpKind::Append => {
                    if self.files.is_empty() || self.free_lpns.is_empty() {
                        continue;
                    }
                    let f = self.rng.gen_range(self.files.len() as u64) as usize;
                    let i = self.rng.gen_range(self.free_lpns.len() as u64) as usize;
                    let page = self.free_lpns.swap_remove(i);
                    self.files[f].pages.push(page);
                    batch.push(OsIo::write(page));
                    batch.push(OsIo::write(self.metadata_lpn()));
                    self.appends += 1;
                }
                OpKind::Delete => {
                    if self.files.is_empty() {
                        continue;
                    }
                    let f = self.rng.gen_range(self.files.len() as u64) as usize;
                    let file = self.files.swap_remove(f);
                    for &p in &file.pages {
                        batch.push(OsIo::trim(p));
                        self.free_lpns.push(p);
                    }
                    batch.push(OsIo::write(self.metadata_lpn()));
                    self.deletes += 1;
                }
            }
            if batch.is_empty() {
                continue;
            }
            self.batch_in_flight = batch.len() as u64;
            for io in batch {
                ctx.submit(io);
            }
            return;
        }
        if self.batch_in_flight == 0 {
            ctx.finish();
        }
    }

    fn pick_op(&mut self) -> OpKind {
        // Create-heavy while small; balanced once populated.
        let r = self.rng.gen_range(100);
        if self.files.len() < 4 || r < 40 {
            OpKind::Create
        } else if r < 75 {
            OpKind::Append
        } else {
            OpKind::Delete
        }
    }
}

impl Workload for FileSystemThread {
    fn init(&mut self, ctx: &mut ThreadCtx) {
        self.next_batch(ctx);
    }

    fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
        debug_assert!(self.batch_in_flight > 0);
        self.batch_in_flight -= 1;
        if self.batch_in_flight == 0 {
            self.next_batch(ctx);
        }
    }

    fn name(&self) -> &str {
        "file-system"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpn_pool_is_disjoint_from_metadata() {
        let fs = FileSystemThread::new(Region::new(100, 64), 10, 4, 1);
        assert!(fs.free_lpns.iter().all(|&l| l >= 100 + METADATA_PAGES));
        assert_eq!(fs.free_lpns.len() as u64, 64 - METADATA_PAGES);
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn tiny_region_rejected() {
        FileSystemThread::new(Region::new(0, 10), 10, 4, 1);
    }

    #[test]
    fn op_mix_becomes_balanced() {
        let mut fs = FileSystemThread::new(Region::new(0, 256), 0, 4, 7);
        // Seed some files so all ops are possible.
        for _ in 0..10 {
            fs.files.push(File { pages: vec![] });
        }
        let mut seen = [0u32; 3];
        for _ in 0..300 {
            match fs.pick_op() {
                OpKind::Create => seen[0] += 1,
                OpKind::Append => seen[1] += 1,
                OpKind::Delete => seen[2] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 30), "op mix too skewed: {seen:?}");
    }
}
