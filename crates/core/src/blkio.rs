//! Block-trace records: the normalized form of one traced IO request.
//!
//! Production block traces (MSR-Cambridge, blktrace exports, …) arrive as
//! per-request rows: an arrival timestamp, a direction, a byte offset and
//! a byte length. [`BlkRecord`] is the simulator's normalized view of one
//! such row — arrival instant in virtual nanoseconds, operation, first
//! logical page and page count — shared by the trace parsers, the
//! characterizer and the replay workloads (all in `eagletree-workloads`).
//! Keeping the record type here, in the kernel crate, lets any layer speak
//! "trace" without depending on the workload stack.

use crate::time::SimTime;

/// Operation of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlkOp {
    Read,
    Write,
    /// Deallocation (ATA TRIM / NVMe deallocate / SCSI UNMAP).
    Trim,
}

impl BlkOp {
    /// Canonical trace-file token (`Read` / `Write` / `Trim`).
    pub fn token(self) -> &'static str {
        match self {
            BlkOp::Read => "Read",
            BlkOp::Write => "Write",
            BlkOp::Trim => "Trim",
        }
    }
}

/// One traced request, normalized to device pages and virtual time.
///
/// `at` is the request's arrival instant with the trace's origin shifted
/// to zero (the first record of a well-formed trace arrives at `t = 0`).
/// Multi-page requests keep their length here; replay decides whether to
/// split them into per-page IOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRecord {
    /// Arrival instant, relative to the trace origin.
    pub at: SimTime,
    /// Read, write or trim.
    pub op: BlkOp,
    /// First logical page touched.
    pub page: u64,
    /// Pages touched (≥ 1).
    pub pages: u32,
}

impl BlkRecord {
    /// A single-page record.
    pub fn new(at: SimTime, op: BlkOp, page: u64) -> Self {
        BlkRecord {
            at,
            op,
            page,
            pages: 1,
        }
    }

    /// A multi-page record.
    pub fn spanning(at: SimTime, op: BlkOp, page: u64, pages: u32) -> Self {
        debug_assert!(pages >= 1, "a record touches at least one page");
        BlkRecord {
            at,
            op,
            page,
            pages,
        }
    }

    /// Last page touched (inclusive).
    pub fn last_page(&self) -> u64 {
        self.page + self.pages.saturating_sub(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_constructors_and_span() {
        let r = BlkRecord::new(SimTime::from_nanos(5), BlkOp::Read, 42);
        assert_eq!(r.pages, 1);
        assert_eq!(r.last_page(), 42);
        let r = BlkRecord::spanning(SimTime::ZERO, BlkOp::Write, 10, 4);
        assert_eq!(r.last_page(), 13);
    }

    #[test]
    fn op_tokens_are_canonical() {
        assert_eq!(BlkOp::Read.token(), "Read");
        assert_eq!(BlkOp::Write.token(), "Write");
        assert_eq!(BlkOp::Trim.token(), "Trim");
    }
}
