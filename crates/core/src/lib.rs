//! # eagletree-core
//!
//! The discrete-event simulation kernel underpinning EagleTree.
//!
//! EagleTree simulates the whole SSD IO stack *in virtual time*: every layer
//! (flash array, SSD controller, OS, application threads) advances by
//! scheduling events on a single global [`EventQueue`]. This crate provides
//! the domain-independent pieces:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a deterministic priority queue of timestamped events,
//! * [`SimRng`] — a reproducible, platform-independent PRNG plus the
//!   distributions the workload generators need (uniform, [`Zipf`]),
//! * [`stats`] — streaming statistics (mean/variance, log-bucketed latency
//!   histograms with quantiles, time-series samplers) used by the
//!   experimental suite.
//!
//! Determinism is a design goal: two simulations built from the same
//! configuration and seed produce byte-identical results. The event queue
//! breaks timestamp ties by insertion sequence number and the RNG is a
//! self-contained SplitMix64, so no platform or `HashMap`-iteration-order
//! effects can leak into results.

#![forbid(unsafe_code)]

pub mod blkio;
pub mod calendar;
pub mod event;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use blkio::{BlkOp, BlkRecord};
pub use event::{global_events_popped, thread_events_popped, EventQueue, QueueKind, ScheduledEvent};
pub use obs::{
    Cause, Obs, ObsConfig, Span, Stage, StageBreakdown, StageNs, Timeline, NO_SPAN,
};
pub use rng::{SimRng, Zipf};
pub use stats::{Histogram, OnlineStats, Tail, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, TraceLog};
