//! Streaming statistics for the experimental suite.
//!
//! Experiments report throughput, mean latency, latency variability and tail
//! percentiles per IO class. These collectors are O(1) per sample so they
//! can be attached to every thread and every IO source without distorting
//! simulation performance:
//!
//! * [`OnlineStats`] — Welford mean/variance plus min/max,
//! * [`Histogram`] — log-bucketed latency histogram with quantile queries,
//! * [`TimeSeries`] — fixed-interval samples of a metric over virtual time.

use crate::time::{SimDuration, SimTime};

/// Welford-style streaming mean / variance / min / max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Convenience: record a duration in microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros_f64());
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another collector into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram of durations (nanoseconds), for quantile queries.
///
/// Buckets are `[2^k, 2^(k+1))` with 8 sub-buckets each, giving ≤ ~12%
/// relative quantile error over the full nanosecond-to-minutes range with a
/// few hundred fixed buckets — the classic HdrHistogram-style layout, sized
/// for simulation latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
}

const SUB_BITS: u32 = 3; // 8 sub-buckets per power of two
const NUM_BUCKETS: usize = (64 << SUB_BITS) as usize;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    fn index_of(ns: u64) -> usize {
        // Values below 2^(SUB_BITS+1) map to themselves (exact buckets);
        // larger values use (exponent, sub-bucket) addressing. The identity
        // range ends below the first computed index (SUB_BITS+1 << SUB_BITS),
        // so the two ranges never collide.
        if ns < (2 << SUB_BITS) {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros();
        let sub = (ns >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        (((exp as u64) << SUB_BITS) | sub) as usize
    }

    /// Lower bound of the bucket at `idx` (the value reported for quantiles).
    fn value_of(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < (2 << SUB_BITS) {
            return idx;
        }
        let exp = (idx >> SUB_BITS) as u32;
        let sub = idx & ((1 << SUB_BITS) - 1);
        if exp <= SUB_BITS {
            // Indices in the gap between the identity range and the first
            // computed index are unused by `index_of`; clamp to the identity
            // boundary so quantile scans stay monotonic.
            return 2 << SUB_BITS;
        }
        (1u64 << exp) | (sub << (exp - SUB_BITS))
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::index_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded durations.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// The bucket holding the sample of rank `max(1, ceil(q·count))` —
    /// the one rank rule both quantile edges share.
    ///
    /// `q` outside `[0, 1]` is a caller bug: debug builds assert, release
    /// builds clamp to the nearest edge instead of silently mis-indexing
    /// through the float→int cast. NaN is asserted too and clamps to 0
    /// (the `partial_cmp` below is false for NaN, leaving the minimum).
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        debug_assert!(
            (0.0..=1.0).contains(&q),
            "quantile fraction must be in [0, 1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let q = if q.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) {
            q.min(1.0)
        } else {
            0.0 // negative or NaN
        };
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(i);
            }
        }
        Some(NUM_BUCKETS - 1)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower bound.
    ///
    /// An empty histogram returns [`SimDuration::ZERO`] for every `q`.
    /// Out-of-range or NaN `q` asserts in debug builds and clamps into
    /// `[0, 1]` (NaN to 0) in release builds.
    pub fn quantile(&self, q: f64) -> SimDuration {
        match self.quantile_bucket(q) {
            None => SimDuration::ZERO,
            Some(i) => SimDuration::from_nanos(Self::value_of(i)),
        }
    }

    /// Median.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.quantile(0.999)
    }

    /// The full tail summary (count, mean, p50/p95/p99/p99.9) in one call —
    /// what per-tenant QoS accounting reports per op class.
    pub fn tail(&self) -> Tail {
        Tail {
            count: self.count,
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
            p999: self.p999(),
        }
    }

    /// Upper edge (exclusive) of the bucket a quantile query for `q` drew
    /// its answer from. Together with [`Histogram::quantile`] (the bucket's
    /// lower edge) this brackets the exact order-statistic: the histogram's
    /// quantile error is bounded by the width of one bucket.
    pub fn quantile_upper(&self, q: f64) -> SimDuration {
        match self.quantile_bucket(q) {
            None => SimDuration::ZERO,
            Some(i) if i + 1 < NUM_BUCKETS => {
                SimDuration::from_nanos(Self::value_of(i + 1))
            }
            Some(_) => SimDuration::from_nanos(u64::MAX),
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

/// Tail-latency summary of one [`Histogram`]: the percentiles the
/// multi-tenant experiments plot (each a bucket lower bound, so within one
/// bucket width — ≤ ~12% relative — of the exact order statistic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tail {
    pub count: u64,
    pub mean: SimDuration,
    pub p50: SimDuration,
    pub p95: SimDuration,
    pub p99: SimDuration,
    pub p999: SimDuration,
}

/// Fixed-interval time series of a metric over virtual time.
///
/// The experiment suite uses this to plot "metric vs. time" curves (e.g.
/// instantaneous throughput, queue length). Feed it observations with
/// [`TimeSeries::observe`]; it accumulates per-interval sums.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: SimDuration,
    points: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given sampling interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        TimeSeries {
            interval,
            points: Vec::new(),
        }
    }

    /// Add `value` to the interval containing `t`.
    pub fn observe(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.points.len() {
            self.points.resize(idx + 1, 0.0);
        }
        self.points[idx] += value;
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Per-interval sums, in time order.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Iterate `(interval_start, sum)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().enumerate().map(move |(i, &v)| {
            (SimTime::from_nanos(i as u64 * self.interval.as_nanos()), v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 19) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..40] {
            a.record(x);
        }
        for &x in &xs[40..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.p50().as_nanos();
        // True median is 500us; log-buckets give ≤ ~12.5% error.
        assert!(
            (400_000..=600_000).contains(&p50),
            "p50 {p50}ns outside tolerance"
        );
        let p99 = h.p99().as_nanos();
        assert!(
            (850_000..=1_100_000).contains(&p99),
            "p99 {p99}ns outside tolerance"
        );
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(300));
        assert_eq!(h.mean().as_nanos(), 200);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "quantile fraction must be in [0, 1]")]
    fn quantile_out_of_range_asserts_in_debug() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(1));
        let _ = h.quantile(1.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "quantile fraction must be in [0, 1]")]
    fn quantile_nan_asserts_in_debug() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(1));
        let _ = h.quantile(f64::NAN);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_nanos(), 15_000);
    }

    #[test]
    fn histogram_index_value_roundtrip_is_lower_bound() {
        for ns in [0u64, 1, 7, 8, 9, 100, 1023, 1024, 123_456_789] {
            let idx = Histogram::index_of(ns);
            let lo = Histogram::value_of(idx);
            assert!(lo <= ns, "lower bound {lo} above sample {ns}");
            // And the next bucket starts above the sample.
            if idx + 1 < NUM_BUCKETS {
                assert!(Histogram::value_of(idx + 1) > ns);
            }
        }
    }

    #[test]
    fn time_series_accumulates_per_interval() {
        let mut ts = TimeSeries::new(SimDuration::from_micros(10));
        ts.observe(SimTime::from_nanos(0), 1.0);
        ts.observe(SimTime::from_nanos(9_999), 1.0);
        ts.observe(SimTime::from_nanos(10_000), 1.0);
        ts.observe(SimTime::from_nanos(35_000), 2.0);
        assert_eq!(ts.points(), &[2.0, 1.0, 0.0, 2.0]);
        let pairs: Vec<_> = ts.iter().collect();
        assert_eq!(pairs[3].0, SimTime::from_nanos(30_000));
        assert_eq!(pairs[3].1, 2.0);
        assert_eq!(ts.interval(), SimDuration::from_micros(10));
    }
}
