//! Deterministic random number generation.
//!
//! EagleTree results must be reproducible across platforms and across runs,
//! so the simulator carries its own PRNG rather than depending on `rand`'s
//! unstable-by-version algorithms. [`SimRng`] is SplitMix64 — tiny, fast,
//! and statistically adequate for workload generation — and [`Zipf`] is the
//! skewed-access distribution used by the hot/cold workloads.

/// A deterministic SplitMix64 PRNG.
///
/// SplitMix64 passes BigCrush for the use here (workload generation) and has
/// a one-word state, so cloning a generator to fork per-thread streams is
/// cheap. Identical seeds produce identical streams on every platform.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including zero) is fine.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Fork an independent stream, e.g. one per workload thread, so that
    /// adding a thread does not perturb the streams of existing threads.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// A Zipf-distributed sampler over `0..n`.
///
/// Rank 0 is the hottest item. `theta = 0` degenerates to uniform;
/// `theta ≈ 0.99` is the usual YCSB-style skew. Sampling is O(log n) by
/// binary search over the precomputed CDF; for the population sizes
/// EagleTree sweeps (≤ a few million logical pages) the table is small.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta >= 0`.
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf population must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point droop at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of items in the population.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        // partition_point returns the first index with cdf[i] >= u … we want
        // the smallest i such that u < cdf[i].
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(99);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::new(123);
        let n = 100_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With theta=0.99 the top 10% of ranks carry well over half the mass.
        assert!(
            hot as f64 / n as f64 > 0.6,
            "only {hot}/{n} samples hit the hot 10%"
        );
    }

    #[test]
    fn zipf_samples_cover_population_bounds() {
        let z = Zipf::new(10, 1.2);
        let mut rng = SimRng::new(77);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 0.8);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn zipf_rejects_empty_population() {
        Zipf::new(0, 1.0);
    }
}
