//! Two-tier calendar (ladder) queue over the discrete ns timeline.
//!
//! Flash op latencies are a small set of nanosecond constants, so the
//! simulator's event timeline is dense and discrete — the textbook case
//! for a calendar queue: a ring of fixed-width time buckets covers the
//! *near horizon* (where almost every event lands), and a conventional
//! binary heap holds the *overflow tier* of far-future outliers
//! (checkpoint timers, QoS refills, multi-ms erases). Scheduling appends
//! to a bucket in O(1); popping sorts one bucket at a time lazily, so the
//! amortized cost per event is O(1) plus an O(b log b) share for its
//! bucket of size `b`.
//!
//! Determinism is non-negotiable: [`Calendar`] pops events in exactly
//! ascending `(time, seq)` order — the same total order the heap oracle
//! in [`crate::event`] produces — *by construction*, independent of
//! bucket width or ring size. Tuning (see [`Calendar::retune`]) only
//! moves work between the two tiers; it can never reorder events.
//!
//! Internal layout:
//!
//! * `cur` — the *active* bucket (index `cursor`), sorted **descending**
//!   by `(time, seq)` so the next event pops from the `Vec` tail without
//!   shifting.
//! * `buckets` — the ring; slot `g & (nbuckets-1)` holds the unsorted
//!   events of global bucket `g` for `cursor < g < cursor + nbuckets`.
//! * `occ` — an occupancy bitmap over ring slots, so advancing the
//!   cursor skips runs of empty buckets with a couple of word scans
//!   instead of walking them one by one.
//! * `overflow` — min-heap of events at or beyond the near horizon;
//!   they migrate into the ring as the cursor advances past their
//!   admission point.

use std::collections::BinaryHeap;

use crate::event::{Entry, ScheduledEvent};
use crate::time::{SimDuration, SimTime};

/// Default ring size. Must be a power of two and at least 64.
const DEFAULT_NBUCKETS: usize = 1024;

/// Default bucket width of `1 << 12` ns ≈ 4.1 µs: with 1024 buckets the
/// near horizon spans ~4.2 ms, covering every flash op latency except the
/// slowest erases (which ride the overflow tier until the cursor nears).
const DEFAULT_SHIFT: u32 = 12;

pub(crate) struct Calendar<E> {
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// Occupancy bitmap over ring slots (`nbuckets / 64` words).
    occ: Vec<u64>,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Global index of the active bucket; equals `bucket(now)` after any
    /// pop, so future schedules (clamped to `now`) never land behind it.
    cursor: u64,
    /// Active bucket, sorted descending by `(time, seq)`; pops from tail.
    cur: Vec<ScheduledEvent<E>>,
    /// Far-future tier: events with `bucket >= cursor + nbuckets`.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    /// Eagerly maintained `(time, seq)` of the earliest pending event.
    min_key: Option<(SimTime, u64)>,
}

impl<E> Calendar<E> {
    pub(crate) fn new() -> Self {
        Self::with_params(DEFAULT_NBUCKETS, DEFAULT_SHIFT)
    }

    /// A calendar with a caller-sized ring at the default bucket width.
    /// Small rings suit lane routers that keep many sparsely-populated
    /// queues: 64 buckets is one occupancy word and a few cache lines of
    /// `Vec` headers per queue, where the default ring's 1024 slots cost
    /// more in cache misses than their scan savings are worth at a
    /// handful of pending events. Callers re-tune the width via
    /// [`Calendar::retune`]; ring size never affects pop order.
    pub(crate) fn with_buckets(nbuckets: usize) -> Self {
        Self::with_params(nbuckets, DEFAULT_SHIFT)
    }

    pub(crate) fn with_params(nbuckets: usize, shift: u32) -> Self {
        assert!(
            nbuckets >= 64 && nbuckets.is_power_of_two(),
            "calendar ring must be a power of two >= 64"
        );
        Calendar {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            occ: vec![0u64; nbuckets / 64],
            shift,
            cursor: 0,
            cur: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            min_key: None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.min_key
    }

    fn mask(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    fn bucket_of(&self, t: SimTime) -> u64 {
        t.as_nanos() >> self.shift
    }

    pub(crate) fn push(&mut self, ev: ScheduledEvent<E>) {
        let key = (ev.time, ev.seq);
        let g = self.bucket_of(ev.time);
        if g <= self.cursor {
            // Active bucket: sorted-insert to keep the descending order.
            // Common for "fire immediately" events scheduled at `now`.
            let i = self.cur.partition_point(|e| (e.time, e.seq) > key);
            self.cur.insert(i, ev);
        } else if g < self.cursor + self.buckets.len() as u64 {
            self.place_near(g, ev);
        } else {
            self.overflow.push(Entry(ev));
        }
        self.len += 1;
        if self.min_key.is_none_or(|m| key < m) {
            self.min_key = Some(key);
        }
    }

    fn place_near(&mut self, g: u64, ev: ScheduledEvent<E>) {
        let s = (g & self.mask()) as usize;
        self.buckets[s].push(ev);
        self.occ[s >> 6] |= 1u64 << (s & 63);
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.len == 0 {
            return None;
        }
        if self.cur.is_empty() {
            let g = match self.next_near_bucket() {
                Some(g) => g,
                // Everything pending is far-future: re-anchor the ring at
                // the overflow minimum and migrate the new window in.
                None => self.bucket_of(self.overflow.peek().expect("len > 0").0.time),
            };
            self.advance_to(g);
            debug_assert!(!self.cur.is_empty());
        }
        let ev = self.cur.pop().expect("active bucket non-empty");
        self.len -= 1;
        self.recompute_min();
        Some(ev)
    }

    /// Global index of the nearest ring bucket holding events, if any.
    fn next_near_bucket(&self) -> Option<u64> {
        if self.len == self.overflow.len() + self.cur.len() {
            return None;
        }
        let n = self.buckets.len();
        let from = self.cursor + 1;
        let start = (from & self.mask()) as usize;
        let pos = self.next_set(start).expect("ring events but empty bitmap");
        let dist = (pos + n - start) & (n - 1);
        Some(from + dist as u64)
    }

    /// First set occupancy bit at ring position >= `start` (circular).
    fn next_set(&self, start: usize) -> Option<usize> {
        let nwords = self.occ.len();
        let (sw, sb) = (start >> 6, start & 63);
        let first = self.occ[sw] & (!0u64 << sb);
        if first != 0 {
            return Some((sw << 6) + first.trailing_zeros() as usize);
        }
        for k in 1..nwords {
            let i = (sw + k) & (nwords - 1);
            let w = self.occ[i];
            if w != 0 {
                return Some((i << 6) + w.trailing_zeros() as usize);
            }
        }
        let wrapped = self.occ[sw] & !(!0u64 << sb);
        if wrapped != 0 {
            return Some((sw << 6) + wrapped.trailing_zeros() as usize);
        }
        None
    }

    /// Move the cursor to bucket `g`, migrate overflow events that the
    /// advance brought inside the near horizon, then activate the bucket.
    ///
    /// Migration must precede activation: a migrated event may belong to
    /// bucket `g` itself (always so when re-anchoring from overflow).
    fn advance_to(&mut self, g: u64) {
        self.cursor = g;
        let horizon = g + self.buckets.len() as u64;
        while let Some(e) = self.overflow.peek() {
            if self.bucket_of(e.0.time) >= horizon {
                break;
            }
            let ev = self.overflow.pop().expect("peeked overflow").0;
            let gb = self.bucket_of(ev.time);
            self.place_near(gb, ev);
        }
        let s = (g & self.mask()) as usize;
        self.occ[s >> 6] &= !(1u64 << (s & 63));
        // Swap the slot's Vec in as the active bucket and recycle the old
        // (drained) active Vec's allocation into the now-empty slot.
        let old = std::mem::replace(&mut self.cur, std::mem::take(&mut self.buckets[s]));
        debug_assert!(old.is_empty());
        self.buckets[s] = old;
        self.cur
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
    }

    fn recompute_min(&mut self) {
        self.min_key = if let Some(e) = self.cur.last() {
            Some((e.time, e.seq))
        } else if self.len > self.overflow.len() {
            let g = self.next_near_bucket().expect("ring holds events");
            let s = (g & self.mask()) as usize;
            self.buckets[s].iter().map(|e| (e.time, e.seq)).min()
        } else {
            self.overflow.peek().map(|e| (e.0.time, e.0.seq))
        };
    }

    /// Re-tune the bucket width so `horizon` spans about half the ring,
    /// then re-bucket all pending events around `now`.
    ///
    /// Callers pass the largest gap they expect between now and the events
    /// they schedule (max flash-op latency, timer period, QoS refill gap);
    /// sizing the ring to cover it keeps those events out of the overflow
    /// heap without inflating the empty-bucket scan distance. A no-op when
    /// the width is already right; rebucketing cannot reorder pops.
    pub(crate) fn retune(&mut self, now: SimTime, horizon: SimDuration) {
        let per = horizon
            .as_nanos()
            .max(1)
            .div_ceil(self.buckets.len() as u64 / 2)
            .max(1);
        let shift = ceil_log2(per).clamp(4, 36);
        if shift == self.shift {
            return;
        }
        let mut all: Vec<ScheduledEvent<E>> = Vec::with_capacity(self.len);
        all.append(&mut self.cur);
        for s in 0..self.buckets.len() {
            if !self.buckets[s].is_empty() {
                all.append(&mut self.buckets[s]);
            }
        }
        self.occ.fill(0);
        while let Some(Entry(e)) = self.overflow.pop() {
            all.push(e);
        }
        self.shift = shift;
        self.cursor = now.as_nanos() >> shift;
        self.len = 0;
        self.min_key = None;
        for ev in all {
            self.push(ev);
        }
    }
}

fn ceil_log2(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, seq: u64) -> ScheduledEvent<u64> {
        ScheduledEvent {
            time: SimTime::from_nanos(ns),
            seq,
            payload: seq,
        }
    }

    #[test]
    fn pops_ascending_across_tiers() {
        let mut c = Calendar::with_params(64, 4); // 16 ns buckets, 1 µs window
        // Far-future outlier straight to overflow, then near events.
        c.push(ev(1_000_000, 0));
        c.push(ev(40, 1));
        c.push(ev(40, 2));
        c.push(ev(7, 3));
        assert_eq!(c.peek_key(), Some((SimTime::from_nanos(7), 3)));
        let order: Vec<u64> = std::iter::from_fn(|| c.pop().map(|e| e.seq)).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn retune_preserves_order() {
        let mut c = Calendar::with_params(64, 0);
        for i in 0..100u64 {
            c.push(ev(i * 37 % 1000, i));
        }
        c.retune(SimTime::ZERO, SimDuration::from_micros(100));
        let mut last = None;
        let mut n = 0;
        while let Some(e) = c.pop() {
            let key = (e.time, e.seq);
            assert!(last.is_none_or(|l| l < key));
            last = Some(key);
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
