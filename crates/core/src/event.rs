//! Deterministic event queue.
//!
//! The whole simulator is driven by [`EventQueue`]s: components schedule
//! payloads at future instants and the main loop pops them in order.
//! Timestamp ties are broken by insertion sequence number, which makes event
//! delivery order — and therefore every simulation result — fully
//! deterministic for a given configuration and seed.
//!
//! The queue is a thin facade over two interchangeable backends selected by
//! [`QueueKind`]:
//!
//! * [`QueueKind::Heap`] — a binary heap, O(log n) per op. Simple and
//!   obviously correct: it stays in the tree as the *oracle* the calendar
//!   backend is property-tested and fingerprint-compared against.
//! * [`QueueKind::Calendar`] — a two-tier calendar queue
//!   ([`crate::calendar`]), amortized O(1) per op on the dense discrete
//!   timelines flash simulations produce. Pops the exact same `(time, seq)`
//!   order as the heap by construction, so switching backends can never
//!   change a simulation result — only how fast it runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::calendar::Calendar;
use crate::time::{SimDuration, SimTime};

/// Registry of per-thread pop counters. Keeping an `Arc` here lets
/// [`global_events_popped`] sum the totals of threads that have already
/// exited; the registry is only locked on thread birth and on reads, never
/// in [`EventQueue::pop`].
fn counter_registry() -> &'static Mutex<Vec<Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

std::thread_local! {
    /// Per-thread count of events popped. Each simulation runs wholly on
    /// one thread, so deltas of this attribute events to the *experiment*
    /// even when the harness runs several experiments on parallel worker
    /// threads. The hot path does a plain load + store — no atomic RMW —
    /// which is safe because each counter has exactly one writer (its
    /// thread); other threads only ever read it.
    static THREAD_EVENTS_POPPED: Arc<AtomicU64> = {
        let c = Arc::new(AtomicU64::new(0));
        counter_registry().lock().unwrap().push(Arc::clone(&c));
        c
    };
}

/// Total events popped across all queues and threads since process start.
///
/// Computed by summing the per-thread counters (including exited threads),
/// so the per-pop cost is a thread-local increment rather than contended
/// atomic traffic on one global cell.
pub fn global_events_popped() -> u64 {
    counter_registry()
        .lock()
        .unwrap()
        .iter()
        .map(|c| c.load(AtomicOrdering::Relaxed))
        .sum()
}

/// Events popped by queues on the *calling thread* since it started.
/// Deltas around a simulation give its exact event count regardless of
/// what other worker threads run concurrently.
pub fn thread_events_popped() -> u64 {
    THREAD_EVENTS_POPPED.with(|c| c.load(AtomicOrdering::Relaxed))
}

/// Which backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary heap: O(log n), the reference oracle.
    Heap,
    /// Two-tier calendar queue: amortized O(1) on dense timelines,
    /// byte-identical pop order to `Heap`.
    #[default]
    Calendar,
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        })
    }
}

impl std::str::FromStr for QueueKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueKind::Heap),
            "calendar" => Ok(QueueKind::Calendar),
            other => Err(format!("unknown queue kind {other:?} (heap|calendar)")),
        }
    }
}

/// An event that has been scheduled on the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// The instant at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion number; the tie-breaker for equal timestamps.
    pub seq: u64,
    /// The caller-supplied payload.
    pub payload: E,
}

/// Internal heap entry ordered for a *min*-heap on `(time, seq)`.
pub(crate) struct Entry<E>(pub(crate) ScheduledEvent<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Calendar<E>),
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order (FIFO), so the
/// simulation is reproducible regardless of backend internals.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    popped: u64,
    scheduled: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty heap-backed queue positioned at `t = 0`.
    ///
    /// Bare queues default to the heap oracle; simulation configs opt into
    /// [`QueueKind::Calendar`] explicitly (see `ControllerConfig` /
    /// `OsConfig` downstream).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// An empty queue on the given backend, positioned at `t = 0`.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backend::Calendar(Calendar::new()),
        };
        Self::from_backend(backend)
    }

    /// Like [`EventQueue::with_kind`] but with a caller-sized calendar
    /// ring (`nbuckets` must be a power of two >= 64; the heap backend
    /// ignores it). Lane routers that hold one queue per LUN use a small
    /// ring so a whole lane set stays cache-resident at the few events
    /// per lane a real simulation keeps pending; the default 1024-bucket
    /// ring suits a standalone queue with thousands pending. Ring size
    /// never affects pop order, only speed.
    pub fn with_kind_and_ring(kind: QueueKind, nbuckets: usize) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backend::Calendar(Calendar::with_buckets(nbuckets)),
        };
        Self::from_backend(backend)
    }

    fn from_backend(backend: Backend<E>) -> Self {
        EventQueue {
            backend,
            next_seq: 0,
            popped: 0,
            scheduled: 0,
            now: SimTime::ZERO,
        }
    }

    /// The backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Events popped from this queue so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Events scheduled on this queue so far.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// The current virtual time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// The simulator never rewinds: scheduling in the past is a caller bug
    /// that panics in debug builds. Release builds *clamp* `time` to `now`
    /// instead — the event fires immediately, in scheduling order after
    /// events already pending at `now` — rather than silently rewinding
    /// the clock and reordering deliveries as a raw heap push would.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_at(time, seq, payload);
    }

    /// Schedule with a caller-supplied sequence number.
    ///
    /// For lane routers that spread one logical event stream over several
    /// queues but need a single total `(time, seq)` order across all of
    /// them: the router allocates seqs from one counter and injects them
    /// here. `seq` must be at least this queue's next auto-assigned value
    /// (monotonic per queue), which a shared counter guarantees.
    pub fn schedule_seq(&mut self, time: SimTime, seq: u64, payload: E) {
        debug_assert!(seq >= self.next_seq, "non-monotonic injected seq");
        self.next_seq = seq + 1;
        self.push_at(time, seq, payload);
    }

    fn push_at(&mut self, time: SimTime, seq: u64, payload: E) {
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time:?} < {:?}",
            self.now
        );
        let time = time.max(self.now);
        self.scheduled += 1;
        let ev = ScheduledEvent { time, seq, payload };
        match &mut self.backend {
            Backend::Heap(h) => h.push(Entry(ev)),
            Backend::Calendar(c) => c.push(ev),
        }
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|e| e.0),
            Backend::Calendar(c) => c.pop(),
        }?;
        self.now = ev.time;
        self.popped += 1;
        THREAD_EVENTS_POPPED.with(|c| {
            // Single-writer counter: load + store beats an atomic RMW.
            c.store(c.load(AtomicOrdering::Relaxed) + 1, AtomicOrdering::Relaxed);
        });
        Some(ev)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(time, seq)` of the next event without popping it. Lane routers
    /// merge several queues by comparing these keys.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| (e.0.time, e.0.seq)),
            Backend::Calendar(c) => c.peek_key(),
        }
    }

    /// Declare the largest expected gap between `now` and newly scheduled
    /// events. The calendar backend re-tunes its bucket width so that
    /// horizon fits the near ring (see [`crate::calendar`]); the heap
    /// ignores hints. Never affects pop order, only performance.
    pub fn hint_horizon(&mut self, horizon: SimDuration) {
        if let Backend::Calendar(c) = &mut self.backend {
            c.retune(self.now, horizon);
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    const KINDS: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(30), "c");
            q.schedule(SimTime::from_nanos(10), "a");
            q.schedule(SimTime::from_nanos(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind}");
        }
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind}");
        }
    }

    #[test]
    fn now_tracks_last_pop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.now(), SimTime::ZERO);
            q.schedule(SimTime::from_nanos(42), ());
            q.pop();
            assert_eq!(q.now(), SimTime::from_nanos(42), "{kind}");
        }
    }

    #[test]
    fn peek_does_not_advance() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(7), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)), "{kind}");
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(10), 1);
            let e = q.pop().unwrap();
            assert_eq!(e.payload, 1);
            // Scheduling relative to now is typical usage.
            q.schedule(q.now() + SimDuration::from_nanos(5), 2);
            q.schedule(q.now() + SimDuration::from_nanos(1), 3);
            assert_eq!(q.pop().unwrap().payload, 3, "{kind}");
            assert_eq!(q.pop().unwrap().payload, 2, "{kind}");
            assert!(q.pop().is_none(), "{kind}");
        }
    }

    #[test]
    fn injected_seqs_merge_across_queues() {
        for kind in KINDS {
            let mut a = EventQueue::with_kind(kind);
            let mut b = EventQueue::with_kind(kind);
            let t = SimTime::from_nanos(9);
            a.schedule_seq(t, 0, "a0");
            b.schedule_seq(t, 1, "b1");
            a.schedule_seq(t, 2, "a2");
            assert_eq!(a.peek_key(), Some((t, 0)));
            assert_eq!(b.peek_key(), Some((t, 1)));
            assert_eq!(a.pop().unwrap().payload, "a0");
            assert_eq!(a.peek_key(), Some((t, 2)), "{kind}");
        }
    }

    #[test]
    fn counts_scheduled_and_popped() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        for i in 0..5 {
            q.schedule(SimTime::from_nanos(i), ());
        }
        q.pop();
        q.pop();
        assert_eq!(q.scheduled(), 5);
        assert_eq!(q.popped(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn thread_counter_tracks_pops() {
        let before = thread_events_popped();
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.schedule(SimTime::from_nanos(1), ());
        q.pop();
        assert_eq!(thread_events_popped(), before + 1);
        assert!(global_events_popped() >= thread_events_popped());
    }

    #[test]
    #[should_panic(expected = "scheduled an event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_clamps_past_timestamps_to_now() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_nanos(10), 0);
            q.pop();
            // A buggy past-scheduled event fires at `now`, after events
            // already pending there — the clock never rewinds.
            q.schedule(q.now(), 1);
            q.schedule(SimTime::from_nanos(3), 2);
            let a = q.pop().unwrap();
            assert_eq!((a.time, a.payload), (SimTime::from_nanos(10), 1), "{kind}");
            let b = q.pop().unwrap();
            assert_eq!((b.time, b.payload), (SimTime::from_nanos(10), 2), "{kind}");
            assert_eq!(q.now(), SimTime::from_nanos(10), "{kind}");
        }
    }
}
