//! Deterministic event queue.
//!
//! The whole simulator is driven by one [`EventQueue`]: components schedule
//! payloads at future instants and the main loop pops them in order.
//! Timestamp ties are broken by insertion sequence number, which makes event
//! delivery order — and therefore every simulation result — fully
//! deterministic for a given configuration and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::SimTime;

/// Process-wide count of events popped from every [`EventQueue`].
///
/// The experiment harness reads deltas of this to report
/// `events_simulated` / `events_per_sec` per experiment without threading a
/// counter through every layer. Relaxed ordering suffices: the simulator is
/// single-threaded per run and the harness only reads between runs.
static EVENTS_POPPED: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Per-thread count of events popped. Each simulation runs wholly on
    /// one thread, so deltas of this attribute events to the *experiment*
    /// even when the harness runs several experiments on parallel worker
    /// threads (the process-global counter interleaves there).
    static THREAD_EVENTS_POPPED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total events popped across all queues since process start.
pub fn global_events_popped() -> u64 {
    EVENTS_POPPED.load(AtomicOrdering::Relaxed)
}

/// Events popped by queues on the *calling thread* since it started.
/// Deltas around a simulation give its exact event count regardless of
/// what other worker threads run concurrently.
pub fn thread_events_popped() -> u64 {
    THREAD_EVENTS_POPPED.with(|c| c.get())
}

/// An event that has been scheduled on the queue.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// The instant at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion number; the tie-breaker for equal timestamps.
    pub seq: u64,
    /// The caller-supplied payload.
    pub payload: E,
}

/// Internal heap entry ordered for a *min*-heap on `(time, seq)`.
struct Entry<E>(ScheduledEvent<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps pop in insertion order (FIFO), so the
/// simulation is reproducible regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            now: SimTime::ZERO,
        }
    }

    /// Events popped from this queue so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// The current virtual time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// Panics in debug builds if `time` is in the past: the simulator never
    /// rewinds.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time:?} < {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(ScheduledEvent { time, seq, payload }));
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?.0;
        self.now = ev.time;
        self.popped += 1;
        EVENTS_POPPED.fetch_add(1, AtomicOrdering::Relaxed);
        THREAD_EVENTS_POPPED.with(|c| c.set(c.get() + 1));
        Some(ev)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_nanos(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.payload, 1);
        // Scheduling relative to now is typical usage.
        q.schedule(q.now() + SimDuration::from_nanos(5), 2);
        q.schedule(q.now() + SimDuration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "scheduled an event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }
}
