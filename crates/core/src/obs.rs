//! Observability: per-op lifecycle spans, stage-attributed latency and
//! time-sliced telemetry.
//!
//! §2.3 of the paper promises "massive visual traces showing exactly how
//! every IO was handled throughout the simulator components". This module
//! is the structured successor to the flat [`crate::trace::TraceLog`]:
//!
//! * [`Span`] — the lifecycle of one operation (an application request or
//!   an internal GC / wear-leveling / merge / mapping / scrub / checkpoint
//!   op) from creation to completion, carrying a [`StageNs`] breakdown of
//!   *where* its latency went, a [`Cause`] link to whatever triggered it,
//!   and an interference annotation when it was stalled behind an internal
//!   op on its LUN.
//! * [`Obs`] — the collector: open-span cursors keyed by span id, a ring
//!   buffer of the most recent closed spans, request-id bindings for the
//!   host layer, and per-lane "last internal op" memory for interference
//!   attribution. Pure observation: it never schedules events, never
//!   consults the RNG, and never influences control flow, so enabling it
//!   cannot perturb a simulation (fingerprints stay byte-identical).
//! * [`StageBreakdown`] — per-stage latency histograms whose stage sums
//!   equal end-to-end latency *by construction*: every attribution call
//!   advances a single cursor (`last`), so no nanosecond is counted twice
//!   or dropped.
//! * [`Timeline`] — fixed-interval rows of named telemetry columns
//!   (IOPS, write amplification, queue depths, GC/merge/scrub activity,
//!   error rates), exportable as CSV or JSON.
//! * [`Obs::to_perfetto`] — a Chrome-trace / Perfetto JSON exporter with
//!   one track per event lane (misc + one per LUN) plus per-tenant tracks.
//!
//! Everything is gated behind [`ObsConfig`]; the default configuration
//! disables all of it and costs one `Option` test per hook site.

use std::collections::BTreeMap;

use crate::stats::{Histogram, Tail};
use crate::time::{SimDuration, SimTime};

/// Sentinel span id: "no span" (ids start at 1).
pub const NO_SPAN: u64 = 0;

/// Observability configuration. The default disables everything; a
/// disabled collector is never even allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Retain up to this many closed spans (a ring buffer keeping the most
    /// recent; older spans are counted as dropped). `0` disables span
    /// collection entirely.
    pub span_capacity: usize,
    /// Emit one telemetry row per this many microseconds of virtual time.
    /// `0` disables the timeline.
    pub timeline_interval_us: u64,
}

impl ObsConfig {
    /// True when span collection is on.
    pub fn spans_enabled(&self) -> bool {
        self.span_capacity > 0
    }

    /// True when timeline sampling is on.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline_interval_us > 0
    }
}

/// Latency stage of an operation's lifecycle. Together the stages
/// partition an op's end-to-end latency:
///
/// * `QueueWait` — host-side: enqueued in the OS dispatch queue (beyond
///   any QoS hold).
/// * `QosHold` — host-side: the tenant's QoS policy (token bucket) had
///   the IO rate-blocked while device slots were available.
/// * `SchedPending` — device-side: waiting in the controller's pending
///   set for the scheduler to issue it, including mapping-fetch parks and
///   the gaps between multi-phase flash commands.
/// * `Media` — NAND busy time of the issued flash commands.
/// * `Retry` — the portion of NAND busy time spent on extra ECC
///   read-retry rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    QueueWait,
    QosHold,
    SchedPending,
    Media,
    Retry,
}

impl Stage {
    /// Number of stages; sizes every per-stage table.
    pub const COUNT: usize = 5;

    /// All stages, in declaration order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::QosHold,
        Stage::SchedPending,
        Stage::Media,
        Stage::Retry,
    ];

    /// Stable snake_case name (CSV/JSON column stems, trace args).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::QosHold => "qos_hold",
            Stage::SchedPending => "sched_pending",
            Stage::Media => "media",
            Stage::Retry => "retry",
        }
    }
}

/// Per-stage nanosecond totals of one span. The sum over stages equals
/// the span's end-to-end latency exactly (cursor accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageNs(pub [u64; Stage::COUNT]);

impl StageNs {
    /// Add `ns` to `stage`.
    pub fn add(&mut self, stage: Stage, ns: u64) {
        self.0[stage as usize] += ns;
    }

    /// Nanoseconds attributed to `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        self.0[stage as usize]
    }

    /// Total nanoseconds across all stages (== end-to-end latency).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The stage holding the largest share (ties break toward the earlier
    /// stage, deterministically).
    pub fn dominant(&self) -> Stage {
        let mut best = 0;
        for i in 1..Stage::COUNT {
            if self.0[i] > self.0[best] {
                best = i;
            }
        }
        Stage::ALL[best]
    }
}

/// Why an internal op exists: the host request span that forced it (a
/// DFTL mapping fetch) or the background policy that scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cause {
    /// No recorded trigger.
    #[default]
    None,
    /// Triggered by the op with this span id.
    Op(u64),
    /// Scheduled by a named background policy ("gc", "wear-leveling",
    /// "scrub", "merge", "mapping-writeback", "checkpoint", "flush").
    Policy(&'static str),
}

impl Cause {
    /// Render for trace args ("", "op:12", "policy:gc").
    pub fn label(&self) -> String {
        match self {
            Cause::None => String::new(),
            Cause::Op(id) => format!("op:{id}"),
            Cause::Policy(p) => format!("policy:{p}"),
        }
    }
}

/// A closed span: one operation's completed lifecycle.
#[derive(Debug, Clone)]
pub struct Span {
    /// Unique id (1-based; [`NO_SPAN`] never appears).
    pub id: u64,
    /// Op kind ("AppRead", "GcWrite", "Erase", …).
    pub kind: &'static str,
    /// Owning tenant for host requests; `None` for internal ops.
    pub tenant: Option<u32>,
    /// Creation instant (host enqueue / controller enqueue).
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Stage attribution; `stages.total() == (end - start)` exactly.
    pub stages: StageNs,
    /// What triggered this op, when known.
    pub cause: Cause,
    /// Interference: `(span id, kind)` of an internal op that occupied
    /// this op's LUN lane while it waited to issue.
    pub stalled_behind: Option<(u64, &'static str)>,
    /// Flash busy windows `(lane, from, to)` of the issued commands
    /// (lane 0 = misc; `1 + lun_index` otherwise). Empty for ops that
    /// completed without touching flash.
    pub busy: Vec<(u32, SimTime, SimTime)>,
}

/// An open span's cursor state.
struct OpenSpan {
    kind: &'static str,
    tenant: Option<u32>,
    start: SimTime,
    /// The last attributed boundary; the next attribution call charges
    /// `now - last` to its stage and advances the cursor.
    last: SimTime,
    stages: StageNs,
    cause: Cause,
    stalled_behind: Option<(u64, &'static str)>,
    busy: Vec<(u32, SimTime, SimTime)>,
}

/// The span collector. Owned by the controller (one per device); the OS
/// layer reaches it through the controller to open host-request spans and
/// drain finished breakdowns.
pub struct Obs {
    capacity: usize,
    next_id: u64,
    open: BTreeMap<u64, OpenSpan>,
    /// Host request id → open span id.
    req_spans: BTreeMap<u64, u64>,
    /// Closed host breakdowns awaiting pickup by the completion path.
    finished: BTreeMap<u64, StageNs>,
    /// Ring buffer of the most recent closed spans.
    closed: Vec<Span>,
    ring_start: usize,
    dropped: u64,
    /// Cause applied to internal spans opened via [`Obs::open_internal`];
    /// set by the triggering policy code around its enqueues.
    cause_ctx: Cause,
    /// Per lane: the last internal op issued there `(span id, kind,
    /// busy-until)` — the interference source a host op can stall behind.
    lane_internal: Vec<Option<(u64, &'static str, SimTime)>>,
}

impl Obs {
    /// A collector retaining up to `capacity` closed spans.
    pub fn new(capacity: usize) -> Self {
        Obs {
            capacity,
            next_id: 1,
            open: BTreeMap::new(),
            req_spans: BTreeMap::new(),
            finished: BTreeMap::new(),
            closed: Vec::new(),
            ring_start: 0,
            dropped: 0,
            cause_ctx: Cause::None,
            lane_internal: Vec::new(),
        }
    }

    /// Open a host-request span (cause always [`Cause::None`]: host IOs
    /// are roots of the causality graph).
    pub fn open(&mut self, kind: &'static str, tenant: Option<u32>, now: SimTime) -> u64 {
        self.open_with(kind, tenant, now, Cause::None)
    }

    /// Open an internal-op span, linking the currently set cause context.
    pub fn open_internal(&mut self, kind: &'static str, now: SimTime) -> u64 {
        let cause = self.cause_ctx;
        self.open_with(kind, None, now, cause)
    }

    /// Open an internal-op span with an explicit cause (bypassing the
    /// context), for callers that can derive the trigger structurally.
    pub fn open_caused(&mut self, kind: &'static str, now: SimTime, cause: Cause) -> u64 {
        self.open_with(kind, None, now, cause)
    }

    fn open_with(
        &mut self,
        kind: &'static str,
        tenant: Option<u32>,
        now: SimTime,
        cause: Cause,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            id,
            OpenSpan {
                kind,
                tenant,
                start: now,
                last: now,
                stages: StageNs::default(),
                cause,
                stalled_behind: None,
                busy: Vec::new(),
            },
        );
        id
    }

    /// Set the cause attached to subsequently opened internal spans. The
    /// triggering code sets it before its enqueues and resets to
    /// [`Cause::None`] after.
    pub fn set_cause(&mut self, cause: Cause) {
        self.cause_ctx = cause;
    }

    /// Charge `now - last` to `stage` and advance the cursor.
    pub fn acc(&mut self, span: u64, stage: Stage, now: SimTime) {
        if let Some(s) = self.open.get_mut(&span) {
            s.stages.add(stage, now.saturating_since(s.last).as_nanos());
            s.last = now;
        }
    }

    /// Charge the wait since the last boundary to the host queue stages:
    /// up to `qos_hold` of it to [`Stage::QosHold`], the rest to
    /// [`Stage::QueueWait`]; advance the cursor to `now`.
    pub fn acc_queue(&mut self, span: u64, now: SimTime, qos_hold: SimDuration) {
        if let Some(s) = self.open.get_mut(&span) {
            let wait = now.saturating_since(s.last);
            let hold = qos_hold.min(wait);
            s.stages.add(Stage::QosHold, hold.as_nanos());
            s.stages.add(Stage::QueueWait, (wait - hold).as_nanos());
            s.last = now;
        }
    }

    /// Record a flash-command issue for `span`: the wait since the last
    /// boundary becomes [`Stage::SchedPending`], the busy window
    /// `[now, done_at)` splits into [`Stage::Media`] and [`Stage::Retry`],
    /// and the cursor advances to `done_at`. Internal spans (not bound to
    /// a host request) close here — their lifecycle ends when the
    /// command's effect lands — and mark the lane busy for interference
    /// attribution; host-bound spans instead pick up a "stalled behind"
    /// annotation if an internal op occupied the lane after they were
    /// enqueued (`waited_since`).
    #[allow(clippy::too_many_arguments)]
    pub fn on_issue(
        &mut self,
        span: u64,
        lane: u32,
        now: SimTime,
        done_at: SimTime,
        retry: SimDuration,
        waited_since: SimTime,
        host_bound: bool,
    ) {
        let Some(s) = self.open.get_mut(&span) else {
            return;
        };
        s.stages
            .add(Stage::SchedPending, now.saturating_since(s.last).as_nanos());
        let busy = done_at.saturating_since(now);
        let retry = retry.min(busy);
        s.stages.add(Stage::Media, (busy - retry).as_nanos());
        s.stages.add(Stage::Retry, retry.as_nanos());
        s.last = done_at;
        s.busy.push((lane, now, done_at));
        let li = lane as usize;
        if host_bound {
            if s.stalled_behind.is_none() {
                if let Some(Some((sid, kind, until))) = self.lane_internal.get(li) {
                    if *until > waited_since {
                        s.stalled_behind = Some((*sid, kind));
                    }
                }
            }
        } else {
            let kind = s.kind;
            if self.lane_internal.len() <= li {
                self.lane_internal.resize(li + 1, None);
            }
            self.lane_internal[li] = Some((span, kind, done_at));
            self.close(span, done_at);
        }
    }

    /// Close `span` at `end`, charging any remainder since the cursor to
    /// [`Stage::SchedPending`], and push it to the closed ring. Returns
    /// the final breakdown (zeroes if the span was unknown).
    pub fn close(&mut self, span: u64, end: SimTime) -> StageNs {
        let Some(mut s) = self.open.remove(&span) else {
            return StageNs::default();
        };
        s.stages
            .add(Stage::SchedPending, end.saturating_since(s.last).as_nanos());
        let stages = s.stages;
        let closed = Span {
            id: span,
            kind: s.kind,
            tenant: s.tenant,
            start: s.start,
            end,
            stages,
            cause: s.cause,
            stalled_behind: s.stalled_behind,
            busy: s.busy,
        };
        if self.closed.len() < self.capacity {
            self.closed.push(closed);
        } else if self.capacity > 0 {
            self.closed[self.ring_start] = closed;
            self.ring_start = (self.ring_start + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
        stages
    }

    /// Bind a host request id to its span (set before the request reaches
    /// the controller, so the device layers find it).
    pub fn bind_request(&mut self, req: u64, span: u64) {
        self.req_spans.insert(req, span);
    }

    /// The span bound to a host request id, if any.
    pub fn request_span(&self, req: u64) -> Option<u64> {
        self.req_spans.get(&req).copied()
    }

    /// Close the span bound to host request `req` at `end`; the final
    /// breakdown is stashed for [`Obs::take_finished`].
    pub fn close_request(&mut self, req: u64, end: SimTime) {
        if let Some(span) = self.req_spans.remove(&req) {
            let stages = self.close(span, end);
            self.finished.insert(req, stages);
        }
    }

    /// Drain the finished breakdown of a completed host request.
    pub fn take_finished(&mut self, req: u64) -> Option<StageNs> {
        self.finished.remove(&req)
    }

    /// Closed spans, oldest retained first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        let (newer, older) = self.closed.split_at(self.ring_start.min(self.closed.len()));
        older.iter().chain(newer.iter())
    }

    /// Closed spans currently retained.
    pub fn closed_count(&self) -> usize {
        self.closed.len()
    }

    /// Spans evicted from the ring after it filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans opened but not yet closed (0 at quiescence).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Render a plain listing of up to `limit` retained spans.
    pub fn render_spans(&self, limit: usize) -> String {
        let mut out = String::new();
        for s in self.spans().take(limit) {
            let st = &s.stages;
            out.push_str(&format!(
                "{:>12}  #{:<6} {:<13} {:>12}  [qw {} qos {} sched {} media {} retry {}]",
                s.start,
                s.id,
                s.kind,
                SimDuration::from_nanos(st.total()).to_string(),
                SimDuration::from_nanos(st.get(Stage::QueueWait)),
                SimDuration::from_nanos(st.get(Stage::QosHold)),
                SimDuration::from_nanos(st.get(Stage::SchedPending)),
                SimDuration::from_nanos(st.get(Stage::Media)),
                SimDuration::from_nanos(st.get(Stage::Retry)),
            ));
            if s.cause != Cause::None {
                out.push_str(&format!("  cause={}", s.cause.label()));
            }
            if let Some((sid, kind)) = s.stalled_behind {
                out.push_str(&format!("  stalled-behind={kind}#{sid}"));
            }
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("… {} older spans dropped\n", self.dropped));
        }
        out
    }

    /// Render an ASCII Gantt chart of span busy windows between `from`
    /// and `to`, `width` columns wide: one row per observed lane, cells
    /// showing the occupying op kind's letter (lowercase application,
    /// uppercase internal). Drops are surfaced below the chart.
    pub fn render_gantt(
        &self,
        from: SimTime,
        to: SimTime,
        width: usize,
        lane_names: &[String],
    ) -> String {
        assert!(to > from && width > 0);
        let window = to.since(from).as_nanos();
        let mut rows: Vec<(u32, Vec<u8>)> = Vec::new();
        for s in self.spans() {
            for &(lane, b_from, b_to) in &s.busy {
                if b_from >= to || b_to <= from {
                    continue;
                }
                let row = match rows.iter_mut().find(|(l, _)| *l == lane) {
                    Some((_, r)) => r,
                    None => {
                        rows.push((lane, vec![b'.'; width]));
                        rows.sort_by_key(|(l, _)| *l);
                        &mut rows.iter_mut().find(|(l, _)| *l == lane).unwrap().1
                    }
                };
                let start_ns = b_from.saturating_since(from).as_nanos();
                let end_ns = b_to.saturating_since(from).as_nanos().min(window);
                let a = (start_ns as u128 * width as u128 / window as u128) as usize;
                let b = ((end_ns as u128 * width as u128).div_ceil(window as u128) as usize)
                    .min(width)
                    .max(a + 1);
                let ch = kind_char(s.kind);
                for cell in &mut row[a..b] {
                    *cell = ch;
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "span occupancy {from} .. {to}  ({window} ns, {width} cols)\n",
        ));
        for (lane, row) in rows {
            let name = lane_names
                .get(lane as usize)
                .map(String::as_str)
                .unwrap_or("?");
            out.push_str(&format!(
                "{name:>10} |{}|\n",
                String::from_utf8_lossy(&row)
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} older spans dropped from the ring)\n",
                self.dropped
            ));
        }
        out
    }

    /// Export retained spans as Chrome-trace / Perfetto JSON: pid 1 is
    /// the device (one thread per event lane — misc, then one per LUN),
    /// pid 2 the tenants (one thread per tenant). Device tracks carry the
    /// flash busy windows; tenant tracks carry full host-request spans.
    /// Load the file at `ui.perfetto.dev` or `chrome://tracing`.
    pub fn to_perfetto(&self, lane_names: &[String], tenant_names: &[String]) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"ssd-device\"}}".into());
        for (i, name) in lane_names.iter().enumerate() {
            ev.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                jstr(name)
            ));
        }
        if !tenant_names.is_empty() {
            ev.push(
                "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"tenants\"}}"
                    .into(),
            );
            for (i, name) in tenant_names.iter().enumerate() {
                ev.push(format!(
                    "{{\"ph\":\"M\",\"pid\":2,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    jstr(name)
                ));
            }
        }
        for s in self.spans() {
            let args = span_args(s);
            if s.busy.is_empty() {
                ev.push(x_event(1, 0, s.kind, s.start, s.end, &args));
            } else {
                for &(lane, from, to) in &s.busy {
                    ev.push(x_event(1, lane, s.kind, from, to, &args));
                }
            }
            if let Some(t) = s.tenant {
                ev.push(x_event(2, t, s.kind, s.start, s.end, &args));
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }
}

/// Gantt cell letter for an op kind: lowercase application, uppercase
/// internal.
fn kind_char(kind: &str) -> u8 {
    match kind {
        "AppRead" => b'r',
        "AppWrite" | "Flush" => b'w',
        "Trim" => b't',
        "GcRead" | "GcWrite" => b'G',
        "WlRead" | "WlWrite" => b'L',
        "MergeRead" | "MergeWrite" => b'M',
        "MappingRead" | "MappingWrite" => b'm',
        "Erase" => b'E',
        "ScrubRead" | "ScrubWrite" => b'S',
        _ => kind.as_bytes().first().copied().unwrap_or(b'?'),
    }
}

fn span_args(s: &Span) -> String {
    let st = &s.stages;
    let mut args = format!(
        "\"span\":{},\"queue_wait_ns\":{},\"qos_hold_ns\":{},\"sched_pending_ns\":{},\"media_ns\":{},\"retry_ns\":{}",
        s.id,
        st.get(Stage::QueueWait),
        st.get(Stage::QosHold),
        st.get(Stage::SchedPending),
        st.get(Stage::Media),
        st.get(Stage::Retry),
    );
    if s.cause != Cause::None {
        args.push_str(&format!(",\"cause\":{}", jstr(&s.cause.label())));
    }
    if let Some((sid, kind)) = s.stalled_behind {
        args.push_str(&format!(",\"stalled_behind\":{}", jstr(&format!("{kind}#{sid}"))));
    }
    args
}

fn x_event(pid: u32, tid: u32, name: &str, from: SimTime, to: SimTime, args: &str) -> String {
    let ts = from.as_nanos() as f64 / 1_000.0;
    let dur = (to.saturating_since(from).as_nanos() as f64 / 1_000.0).max(0.001);
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{{args}}}}}",
        jstr(name)
    )
}

/// Minimal JSON string escape (the build container has no serde).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-stage latency histograms plus an end-to-end total histogram fed
/// from the same [`StageNs`] records — so `total` and the stage sums
/// describe exactly the same population of IOs.
#[derive(Debug, Clone)]
pub struct StageBreakdown {
    stages: [Histogram; Stage::COUNT],
    total: Histogram,
}

impl Default for StageBreakdown {
    fn default() -> Self {
        Self::new()
    }
}

impl StageBreakdown {
    pub fn new() -> Self {
        StageBreakdown {
            stages: std::array::from_fn(|_| Histogram::new()),
            total: Histogram::new(),
        }
    }

    /// Record one IO's breakdown.
    pub fn record(&mut self, st: StageNs) {
        for (h, &ns) in self.stages.iter_mut().zip(st.0.iter()) {
            h.record(SimDuration::from_nanos(ns));
        }
        self.total.record(SimDuration::from_nanos(st.total()));
    }

    /// IOs recorded.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// Histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// Histogram of end-to-end latency (stage sums).
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// Mean microseconds spent in `stage` per IO.
    pub fn mean_us(&self, stage: Stage) -> f64 {
        self.stages[stage as usize].mean().as_micros_f64()
    }

    /// Tail summary of one stage.
    pub fn tail(&self, stage: Stage) -> Tail {
        self.stages[stage as usize].tail()
    }

    /// Tail summary of the stage sums.
    pub fn total_tail(&self) -> Tail {
        self.total.tail()
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (a, b) in self.stages.iter_mut().zip(other.stages.iter()) {
            a.merge(b);
        }
        self.total.merge(&other.total);
    }
}

/// Fixed-interval telemetry rows: each row is one interval's values for a
/// fixed set of named columns. The sampler computes the values (counter
/// deltas, instantaneous depths); this container only stores and exports.
#[derive(Debug, Clone)]
pub struct Timeline {
    interval: SimDuration,
    columns: Vec<&'static str>,
    rows: Vec<(SimTime, Vec<f64>)>,
}

impl Timeline {
    /// A timeline with the given sampling interval and column names.
    pub fn new(interval: SimDuration, columns: Vec<&'static str>) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        assert!(!columns.is_empty(), "timeline needs at least one column");
        Timeline {
            interval,
            columns,
            rows: Vec::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Column names, in row order.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Append one row starting at `at` (must carry one value per column).
    pub fn push_row(&mut self, at: SimTime, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        self.rows.push((at, values));
    }

    /// Rows recorded so far.
    pub fn rows(&self) -> &[(SimTime, Vec<f64>)] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Export as CSV: `t_us` then one column per name.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_us");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (t, vals) in &self.rows {
            out.push_str(&format!("{}", t.as_nanos() as f64 / 1_000.0));
            for v in vals {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Export as JSON: `{"interval_us": …, "columns": […], "rows":
    /// [[t_us, …], …]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"interval_us\": {},\n  \"columns\": [{}],\n  \"rows\": [\n",
            self.interval.as_micros_f64(),
            self.columns
                .iter()
                .map(|c| jstr(c))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for (i, (t, vals)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    [{}", t.as_nanos() as f64 / 1_000.0));
            for v in vals {
                out.push_str(&format!(", {v}"));
            }
            out.push(']');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn config_defaults_off() {
        let c = ObsConfig::default();
        assert!(!c.spans_enabled());
        assert!(!c.timeline_enabled());
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["queue_wait", "qos_hold", "sched_pending", "media", "retry"]
        );
    }

    #[test]
    fn host_span_stage_sums_equal_end_to_end() {
        let mut o = Obs::new(16);
        let span = o.open("AppRead", Some(1), t(0));
        o.bind_request(7, span);
        // 10us in the OS queue, 4 of them QoS-held.
        o.acc_queue(span, t(10), SimDuration::from_micros(4));
        // Issues at 25us, media until 75us with 20us of retry.
        o.on_issue(
            span,
            3,
            t(25),
            t(75),
            SimDuration::from_micros(20),
            t(10),
            true,
        );
        o.close_request(7, t(75));
        let st = o.take_finished(7).unwrap();
        assert_eq!(st.get(Stage::QueueWait), 6_000);
        assert_eq!(st.get(Stage::QosHold), 4_000);
        assert_eq!(st.get(Stage::SchedPending), 15_000);
        assert_eq!(st.get(Stage::Media), 30_000);
        assert_eq!(st.get(Stage::Retry), 20_000);
        assert_eq!(st.total(), 75_000);
        assert_eq!(st.dominant(), Stage::Media);
        let s = o.spans().next().unwrap();
        assert_eq!(s.end.since(s.start).as_nanos(), st.total());
        assert_eq!(s.tenant, Some(1));
        assert_eq!(o.open_count(), 0);
        assert!(o.take_finished(7).is_none(), "finished drains once");
    }

    #[test]
    fn internal_span_closes_at_issue_and_marks_interference() {
        let mut o = Obs::new(16);
        o.set_cause(Cause::Policy("gc"));
        let gc = o.open_internal("GcRead", t(0));
        o.set_cause(Cause::None);
        // Issues at 5us, busy until 60us: closes itself.
        o.on_issue(gc, 2, t(5), t(60), SimDuration::ZERO, t(0), false);
        assert_eq!(o.open_count(), 0);
        let gc_span = o.spans().next().unwrap();
        assert_eq!(gc_span.cause, Cause::Policy("gc"));
        assert_eq!(gc_span.stages.total(), 60_000);
        // A host read enqueued at 10us that issues on the same lane at
        // 70us was stalled behind the GC read (busy until 60 > 10).
        let app = o.open("AppRead", None, t(10));
        o.on_issue(app, 2, t(70), t(95), SimDuration::ZERO, t(10), true);
        let st = o.close(app, t(95));
        assert_eq!(st.total(), 85_000);
        let app_span = o.spans().nth(1).unwrap();
        assert_eq!(app_span.stalled_behind, Some((gc, "GcRead")));
        // A host op on a different lane is not stalled.
        let other = o.open("AppRead", None, t(10));
        o.on_issue(other, 4, t(70), t(95), SimDuration::ZERO, t(10), true);
        o.close(other, t(95));
        assert_eq!(o.spans().nth(2).unwrap().stalled_behind, None);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut o = Obs::new(2);
        for i in 0..5u64 {
            let s = o.open("AppWrite", None, t(i));
            o.close(s, t(i + 1));
        }
        assert_eq!(o.closed_count(), 2);
        assert_eq!(o.dropped(), 3);
        // Oldest retained first: spans 4 and 5 (ids are 1-based).
        let ids: Vec<u64> = o.spans().map(|s| s.id).collect();
        assert_eq!(ids, vec![4, 5]);
        assert!(o.render_spans(10).contains("dropped"));
        let g = o.render_gantt(t(0), t(10), 20, &[]);
        assert!(g.contains("dropped"), "gantt must surface drops: {g}");
    }

    #[test]
    fn gantt_places_busy_windows_per_lane() {
        let mut o = Obs::new(8);
        let a = o.open_internal("GcWrite", t(0));
        o.on_issue(a, 1, t(0), t(50), SimDuration::ZERO, t(0), false);
        let b = o.open("AppRead", None, t(0));
        o.on_issue(b, 2, t(50), t(75), SimDuration::ZERO, t(0), true);
        o.close(b, t(75));
        let names = vec!["misc".to_string(), "c0l0".to_string(), "c0l1".to_string()];
        let g = o.render_gantt(t(0), t(100), 20, &names);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("c0l0") && lines[1].contains('G'));
        assert!(lines[2].contains("c0l1") && lines[2].contains('r'));
        let bar = &lines[2][lines[2].find('|').unwrap() + 1..];
        assert!(bar.starts_with('.'), "read must not start at t=0: {bar}");
    }

    #[test]
    fn perfetto_export_shape() {
        let mut o = Obs::new(8);
        let s = o.open("AppRead", Some(0), t(0));
        o.on_issue(s, 1, t(5), t(30), SimDuration::from_micros(10), t(0), true);
        o.close(s, t(30));
        let trivial = o.open("Trim", Some(1), t(40));
        o.close(trivial, t(40));
        let json = o.to_perfetto(
            &["misc".to_string(), "c0l0".to_string()],
            &["default".to_string(), "reader".to_string()],
        );
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"AppRead\""));
        assert!(json.contains("\"retry_ns\":10000"));
        // Flash-less spans land on the misc lane with a non-zero duration.
        assert!(json.contains("\"name\":\"Trim\""));
        // Braces balance (cheap well-formedness check without a parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn stage_breakdown_totals_match() {
        let mut b = StageBreakdown::new();
        let mut st = StageNs::default();
        st.add(Stage::QueueWait, 10_000);
        st.add(Stage::Media, 40_000);
        b.record(st);
        let mut st2 = StageNs::default();
        st2.add(Stage::Media, 90_000);
        b.record(st2);
        assert_eq!(b.count(), 2);
        assert_eq!(b.stage(Stage::Media).count(), 2);
        assert!(b.mean_us(Stage::Media) > 0.0);
        assert_eq!(b.total().mean().as_nanos(), 70_000);
        let mut c = StageBreakdown::new();
        c.merge(&b);
        assert_eq!(c.count(), 2);
        assert_eq!(c.total_tail().count, 2);
        assert_eq!(c.tail(Stage::Media).count, 2);
    }

    #[test]
    fn timeline_exports_csv_and_json() {
        let mut tl = Timeline::new(
            SimDuration::from_micros(100),
            vec!["iops", "gc_ops"],
        );
        assert!(tl.is_empty());
        tl.push_row(t(0), vec![10.0, 2.0]);
        tl.push_row(t(100), vec![8.0, 0.0]);
        assert_eq!(tl.len(), 2);
        let csv = tl.to_csv();
        assert!(csv.starts_with("t_us,iops,gc_ops\n"));
        assert!(csv.contains("\n100,8,0\n"));
        let json = tl.to_json();
        assert!(json.contains("\"interval_us\": 100"));
        assert!(json.contains("\"columns\": [\"iops\", \"gc_ops\"]"));
        assert!(json.contains("[100, 8, 0]"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn timeline_rejects_wrong_arity() {
        let mut tl = Timeline::new(SimDuration::from_micros(1), vec!["a"]);
        tl.push_row(SimTime::ZERO, vec![1.0, 2.0]);
    }
}
