//! Per-IO visual tracing.
//!
//! §2.3 promises "massive visual traces showing exactly how every IO was
//! handled throughout the simulator components". [`TraceLog`] is the
//! capture side: components append [`TraceEvent`]s (queue entries, flash
//! command issues with their resource occupancy, completions), and
//! [`TraceLog::render_gantt`] draws an ASCII occupancy chart per
//! channel/LUN over a time window — the text-mode equivalent of the demo
//! GUI's trace pane.

use crate::time::{SimDuration, SimTime};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Something entered a queue (`queue` names it, e.g. an op class).
    Enqueue { queue: &'static str },
    /// A flash command was issued and occupies `(channel, lun)`; `busy`
    /// is the LUN occupancy from issue.
    FlashOp {
        op: &'static str,
        channel: u32,
        lun: u32,
        busy: SimDuration,
    },
    /// An application request completed.
    Complete,
}

/// One trace record. `id` correlates records: the request id for
/// application events, the internal op sequence number otherwise.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    pub time: SimTime,
    pub id: u64,
    pub kind: TraceKind,
}

/// Bounded in-memory trace capture: a ring buffer retaining the **most
/// recent** `capacity` events. For post-hoc debugging the tail of a run
/// is the useful half — the crash, the stall, the tail-latency spike all
/// live at the end — so once full, each new event overwrites the oldest
/// and bumps the `dropped` counter.
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    dropped: u64,
}

impl TraceLog {
    /// A log retaining up to `capacity` of the most recent events (older
    /// events are counted as dropped, keeping long runs bounded).
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, time: SimTime, id: u64, kind: TraceKind) {
        let ev = TraceEvent { time, id, kind };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity > 0 {
            self.events[self.start] = ev;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// All retained events, oldest first (= time order, since the
    /// simulator never rewinds).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (newer, older) = self.events.split_at(self.start);
        older.iter().chain(newer.iter())
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or, at capacity 0, never stored).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render a plain listing of every retained event.
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            match e.kind {
                TraceKind::Enqueue { queue } => {
                    out.push_str(&format!("{:>12}  #{:<6} enqueue {}\n", e.time, e.id, queue));
                }
                TraceKind::FlashOp { op, channel, lun, busy } => {
                    out.push_str(&format!(
                        "{:>12}  #{:<6} {:<5} c{}l{} busy {}\n",
                        e.time, e.id, op, channel, lun, busy
                    ));
                }
                TraceKind::Complete => {
                    out.push_str(&format!("{:>12}  #{:<6} complete\n", e.time, e.id));
                }
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped\n", self.dropped));
        }
        out
    }

    /// Render an ASCII Gantt chart of flash occupancy between `from` and
    /// `to`, `width` columns wide. One row per (channel, LUN) observed;
    /// cells show the first letter of the occupying command. Ring
    /// evictions are surfaced below the chart so a sparse window is never
    /// mistaken for an idle device.
    pub fn render_gantt(&self, from: SimTime, to: SimTime, width: usize) -> String {
        assert!(to > from && width > 0);
        let span = to.since(from).as_nanos();
        let mut rows: Vec<((u32, u32), Vec<u8>)> = Vec::new();
        for e in self.events() {
            let TraceKind::FlashOp { op, channel, lun, busy } = e.kind else {
                continue;
            };
            if e.time >= to || e.time + busy <= from {
                continue;
            }
            let key = (channel, lun);
            let row = match rows.iter_mut().find(|(k, _)| *k == key) {
                Some((_, r)) => r,
                None => {
                    rows.push((key, vec![b'.'; width]));
                    rows.sort_by_key(|(k, _)| *k);
                    &mut rows.iter_mut().find(|(k, _)| *k == key).unwrap().1
                }
            };
            let start_ns = e.time.saturating_since(from).as_nanos();
            let end_ns = (e.time + busy).saturating_since(from).as_nanos().min(span);
            let a = (start_ns as u128 * width as u128 / span as u128) as usize;
            let b = ((end_ns as u128 * width as u128).div_ceil(span as u128) as usize)
                .min(width)
                .max(a + 1);
            let ch = op.as_bytes()[0];
            for cell in &mut row[a..b] {
                *cell = ch;
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "flash occupancy {from} .. {to}  ({span} ns, {width} cols)\n",
        ));
        for ((c, l), row) in rows {
            out.push_str(&format!("c{c}l{l} |{}|\n", String::from_utf8_lossy(&row)));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} earlier events dropped from the ring)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash(op: &'static str, channel: u32, lun: u32, at: u64, busy_us: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(at),
            id: 0,
            kind: TraceKind::FlashOp {
                op,
                channel,
                lun,
                busy: SimDuration::from_micros(busy_us),
            },
        }
    }

    #[test]
    fn record_keeps_most_recent_at_capacity() {
        let mut log = TraceLog::new(2);
        for i in 0..5 {
            log.record(SimTime::from_nanos(i), i, TraceKind::Complete);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        // The ring retains the newest events, oldest first.
        let ids: Vec<u64> = log.events().map(|e| e.id).collect();
        assert_eq!(ids, vec![3, 4]);
        assert!(log.render_listing().contains("3 earlier events dropped"));
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = TraceLog::new(0);
        log.record(SimTime::ZERO, 0, TraceKind::Complete);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn gantt_surfaces_ring_drops() {
        let mut log = TraceLog::new(1);
        let e1 = flash("PROG", 0, 0, 0, 50);
        let e2 = flash("READ", 0, 0, 60_000, 25);
        log.record(e1.time, 0, e1.kind);
        log.record(e2.time, 1, e2.kind);
        let g = log.render_gantt(SimTime::ZERO, SimTime::from_nanos(100_000), 20);
        // Only the retained (newer) op renders; the eviction is noted.
        assert!(g.contains('R') && !g.contains('P'));
        assert!(g.contains("1 earlier events dropped"));
    }

    #[test]
    fn listing_includes_all_kinds() {
        let mut log = TraceLog::new(16);
        log.record(SimTime::ZERO, 1, TraceKind::Enqueue { queue: "AppRead" });
        log.record(
            SimTime::from_nanos(10),
            1,
            TraceKind::FlashOp {
                op: "READ",
                channel: 0,
                lun: 1,
                busy: SimDuration::from_micros(25),
            },
        );
        log.record(SimTime::from_nanos(50), 1, TraceKind::Complete);
        let s = log.render_listing();
        assert!(s.contains("enqueue AppRead"));
        assert!(s.contains("READ  c0l1"));
        assert!(s.contains("complete"));
    }

    #[test]
    fn gantt_places_ops_in_time() {
        let mut log = TraceLog::new(16);
        let e1 = flash("PROG", 0, 0, 0, 50);
        let e2 = flash("READ", 0, 1, 50_000, 25);
        log.record(e1.time, 0, e1.kind);
        log.record(e2.time, 1, e2.kind);
        let g = log.render_gantt(SimTime::ZERO, SimTime::from_nanos(100_000), 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("c0l0"));
        // PROG occupies the first half of row c0l0.
        assert!(lines[1].contains("PPPPP"));
        // READ starts halfway through row c0l1.
        let row2 = lines[2];
        let bar = &row2[row2.find('|').unwrap() + 1..row2.rfind('|').unwrap()];
        assert!(bar.starts_with("."), "READ must not start at t=0: {bar}");
        assert!(bar.contains('R'));
    }

    #[test]
    fn gantt_clips_to_window() {
        let mut log = TraceLog::new(4);
        let e = flash("ERASE", 1, 0, 0, 1_000);
        log.record(e.time, 0, e.kind);
        // Window entirely after the op: no rows.
        let g = log.render_gantt(
            SimTime::from_nanos(2_000_000),
            SimTime::from_nanos(3_000_000),
            10,
        );
        assert_eq!(g.lines().count(), 1);
    }
}
