//! Virtual time.
//!
//! The simulator runs entirely in virtual time with nanosecond resolution.
//! [`SimTime`] is an instant (nanoseconds since simulation start) and
//! [`SimDuration`] a span. Both are thin `u64` wrappers so they are `Copy`,
//! totally ordered, and cheap to store in every queued IO.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time: nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed span since `earlier`. Panics in debug builds if `earlier`
    /// is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference, returning zero if `earlier > self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_scale_correctly() {
        assert_eq!(SimDuration::from_nanos(7).as_nanos(), 7);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 2).as_nanos(), 5_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn time_advances_and_diffs() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(25);
        assert_eq!(t1.since(t0).as_nanos(), 25_000);
        assert_eq!(t1 - t0, SimDuration::from_micros(25));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn time_ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(9),
            SimTime::from_nanos(5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(5),
                SimTime::from_nanos(5),
                SimTime::from_nanos(9),
            ]
        );
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_nanos(10);
        t += SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_nanos(3);
        assert_eq!(d.as_nanos(), 3);
    }
}
