//! Property-based tests of the simulation kernel's data structures.

use proptest::prelude::*;

use eagletree_core::{
    EventQueue, Histogram, OnlineStats, QueueKind, SimDuration, SimRng, SimTime, Zipf,
};

/// Drive a heap-backed and a calendar-backed queue in lockstep through the
/// same schedule/pop trace and assert every observable agrees: pop order,
/// payloads, `now`, lengths, peeked keys.
fn lockstep(ops: impl Iterator<Item = LockstepOp> + Clone) {
    let mut heap = EventQueue::with_kind(QueueKind::Heap);
    let mut cal = EventQueue::with_kind(QueueKind::Calendar);
    for op in ops {
        match op {
            LockstepOp::Schedule(delta, tag) => {
                let t = heap.now() + SimDuration::from_nanos(delta);
                heap.schedule(t, tag);
                cal.schedule(t, tag);
            }
            LockstepOp::Pop => {
                let a = heap.pop().map(|e| (e.time, e.seq, e.payload));
                let b = cal.pop().map(|e| (e.time, e.seq, e.payload));
                assert_eq!(a, b, "calendar diverged from heap oracle");
            }
            LockstepOp::Hint(h) => {
                cal.hint_horizon(SimDuration::from_nanos(h));
            }
        }
        assert_eq!(heap.len(), cal.len());
        assert_eq!(heap.peek_key(), cal.peek_key());
        assert_eq!(heap.now(), cal.now());
    }
    // Drain whatever is left and require identical tails.
    loop {
        let a = heap.pop().map(|e| (e.time, e.seq, e.payload));
        let b = cal.pop().map(|e| (e.time, e.seq, e.payload));
        assert_eq!(a, b, "calendar diverged from heap oracle during drain");
        if a.is_none() {
            break;
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum LockstepOp {
    /// Schedule at `now + delta` with a payload tag.
    Schedule(u64, u64),
    Pop,
    /// Horizon hint (calendar-only; must never change observables).
    Hint(u64),
}

/// SplitMix-style payload tag so observably distinct events carry
/// distinct payloads without a second generator.
fn mix(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
}

fn lockstep_op_strategy() -> impl Strategy<Value = LockstepOp> {
    prop_oneof![
        // Dense near-horizon deltas: the calendar's bread and butter.
        4 => (0u64..50_000).prop_map(|d| LockstepOp::Schedule(d, mix(d))),
        // Same-timestamp bursts exercise FIFO tie-breaking.
        2 => (0u64..1_000).prop_map(|t| LockstepOp::Schedule(0, t)),
        // Far-horizon outliers land in the overflow tier (and force
        // re-anchoring when the near ring drains).
        1 => (10_000_000u64..50_000_000_000).prop_map(|d| LockstepOp::Schedule(d, mix(d))),
        4 => Just(LockstepOp::Pop),
        // Width retunes mid-run move events between tiers; order must hold.
        1 => (1u64..100_000_000_000).prop_map(LockstepOp::Hint),
    ]
}

proptest! {
    #[test]
    fn calendar_matches_heap_on_random_traces(
        ops in prop::collection::vec(lockstep_op_strategy(), 1..600),
    ) {
        lockstep(ops.into_iter());
    }

    #[test]
    fn calendar_matches_heap_on_bursts(
        burst in 1usize..300,
        gap in 0u64..10_000_000,
        rounds in 1usize..8,
    ) {
        // Repeated same-timestamp bursts separated by a (possibly huge)
        // gap, fully drained between rounds.
        let mut ops = Vec::new();
        for _ in 0..rounds {
            for i in 0..burst {
                ops.push(LockstepOp::Schedule(gap, i as u64));
            }
            for _ in 0..burst {
                ops.push(LockstepOp::Pop);
            }
        }
        lockstep(ops.into_iter());
    }

    #[test]
    fn calendar_matches_heap_under_interleave(
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        // Seeded schedule/pop interleave with a mix of horizons, popping
        // roughly as often as scheduling so the ring anchor keeps moving.
        let mut rng = SimRng::new(seed);
        let mut ops = Vec::with_capacity(n * 2);
        for i in 0..n {
            let delta = match rng.gen_range(10) {
                0 => 0,                                   // tie burst
                1..=6 => rng.gen_range(100_000),          // near horizon
                7 | 8 => rng.gen_range(100_000_000),      // mid horizon
                _ => 1_000_000_000 + rng.gen_range(1_000_000_000), // outlier
            };
            ops.push(LockstepOp::Schedule(delta, i as u64));
            if rng.gen_range(2) == 0 {
                ops.push(LockstepOp::Pop);
            }
        }
        lockstep(ops.into_iter());
    }
}

proptest! {
    #[test]
    fn event_queue_pops_total_order(times in prop::collection::vec(0u64..10_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            if let Some((pt, pseq)) = prev {
                prop_assert!(e.time > pt || (e.time == pt && e.seq > pseq),
                    "order violated: {:?} after {:?}", (e.time, e.seq), (pt, pseq));
            }
            prev = Some((e.time, e.seq));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_fifo_within_timestamp(n in 1usize..200) {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..n {
            q.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_quantiles_bracket_true_values(
        mut samples in prop::collection::vec(1u64..100_000_000, 2..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let est = h.quantile(q).as_nanos();
        // The log-bucketed estimate is a lower bound of its bucket and the
        // bucket has ≤ 12.5% relative width: the estimate must sit within
        // [min/1.125, max].
        let lo = samples[0] as f64 / 1.125;
        let hi = *samples.last().unwrap();
        prop_assert!((est as f64) >= lo - 1.0, "quantile {est} below all samples");
        prop_assert!(est <= hi, "quantile {est} above max {hi}");
        // Monotonicity in q.
        prop_assert!(h.quantile(0.0) <= h.quantile(q));
        prop_assert!(h.quantile(q) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_matches_exact_percentile_oracle_within_bucket_width(
        mut samples in prop::collection::vec(1u64..10_000_000_000, 1..500),
    ) {
        // The exact oracle: percentile = the sample of rank
        // max(1, ceil(q·n)) in the sorted vector (the histogram's own
        // rank rule). The histogram answer must equal the lower edge of
        // the bucket holding that sample, i.e. the error is bounded by
        // one bucket's width: answer ≤ exact < upper edge of the
        // answer's bucket.
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let n = samples.len() as f64;
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * n).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let est = h.quantile(q).as_nanos();
            let upper = h.quantile_upper(q).as_nanos();
            prop_assert!(
                est <= exact && exact < upper,
                "q={q}: estimate {est} / upper {upper} do not bracket exact {exact}"
            );
            // Bucket width ≤ 1/8 of the lower edge (8 sub-buckets per
            // power of two) once past the exact range: ≤ ~12.5% relative
            // quantile error.
            if est >= 16 {
                prop_assert!(upper - est <= est.div_ceil(8));
            }
        }
        // The one-call tail summary agrees with individual queries.
        let tail = h.tail();
        prop_assert_eq!(tail.count, samples.len() as u64);
        prop_assert_eq!(tail.p50, h.quantile(0.5));
        prop_assert_eq!(tail.p95, h.quantile(0.95));
        prop_assert_eq!(tail.p99, h.quantile(0.99));
        prop_assert_eq!(tail.p999, h.quantile(0.999));
    }

    #[test]
    fn histogram_merge_equals_combined(
        a in prop::collection::vec(1u64..1_000_000, 0..100),
        b in prop::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &x in &a { ha.record(SimDuration::from_nanos(x)); hall.record(SimDuration::from_nanos(x)); }
        for &x in &b { hb.record(SimDuration::from_nanos(x)); hall.record(SimDuration::from_nanos(x)); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.mean().as_nanos(), hall.mean().as_nanos());
        for qq in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(qq), hall.quantile(qq));
        }
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn rng_gen_range_always_below_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_pmf_is_decreasing_and_normalized(n in 1usize..200, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let p = z.pmf(i);
            prop_assert!(p <= prev + 1e-12, "pmf not decreasing at {i}");
            prop_assert!(p >= 0.0);
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range(seed in any::<u64>(), n in 1usize..500) {
        let z = Zipf::new(n, 0.99);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
