//! Property-based tests of the simulation kernel's data structures.

use proptest::prelude::*;

use eagletree_core::{EventQueue, Histogram, OnlineStats, SimDuration, SimRng, SimTime, Zipf};

proptest! {
    #[test]
    fn event_queue_pops_total_order(times in prop::collection::vec(0u64..10_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            if let Some((pt, pseq)) = prev {
                prop_assert!(e.time > pt || (e.time == pt && e.seq > pseq),
                    "order violated: {:?} after {:?}", (e.time, e.seq), (pt, pseq));
            }
            prev = Some((e.time, e.seq));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn event_queue_fifo_within_timestamp(n in 1usize..200) {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..n {
            q.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_quantiles_bracket_true_values(
        mut samples in prop::collection::vec(1u64..100_000_000, 2..400),
        q in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let est = h.quantile(q).as_nanos();
        // The log-bucketed estimate is a lower bound of its bucket and the
        // bucket has ≤ 12.5% relative width: the estimate must sit within
        // [min/1.125, max].
        let lo = samples[0] as f64 / 1.125;
        let hi = *samples.last().unwrap();
        prop_assert!((est as f64) >= lo - 1.0, "quantile {est} below all samples");
        prop_assert!(est <= hi, "quantile {est} above max {hi}");
        // Monotonicity in q.
        prop_assert!(h.quantile(0.0) <= h.quantile(q));
        prop_assert!(h.quantile(q) <= h.quantile(1.0));
    }

    #[test]
    fn histogram_matches_exact_percentile_oracle_within_bucket_width(
        mut samples in prop::collection::vec(1u64..10_000_000_000, 1..500),
    ) {
        // The exact oracle: percentile = the sample of rank
        // max(1, ceil(q·n)) in the sorted vector (the histogram's own
        // rank rule). The histogram answer must equal the lower edge of
        // the bucket holding that sample, i.e. the error is bounded by
        // one bucket's width: answer ≤ exact < upper edge of the
        // answer's bucket.
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        samples.sort_unstable();
        let n = samples.len() as f64;
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * n).ceil() as usize).max(1);
            let exact = samples[rank - 1];
            let est = h.quantile(q).as_nanos();
            let upper = h.quantile_upper(q).as_nanos();
            prop_assert!(
                est <= exact && exact < upper,
                "q={q}: estimate {est} / upper {upper} do not bracket exact {exact}"
            );
            // Bucket width ≤ 1/8 of the lower edge (8 sub-buckets per
            // power of two) once past the exact range: ≤ ~12.5% relative
            // quantile error.
            if est >= 16 {
                prop_assert!(upper - est <= est.div_ceil(8));
            }
        }
        // The one-call tail summary agrees with individual queries.
        let tail = h.tail();
        prop_assert_eq!(tail.count, samples.len() as u64);
        prop_assert_eq!(tail.p50, h.quantile(0.5));
        prop_assert_eq!(tail.p95, h.quantile(0.95));
        prop_assert_eq!(tail.p99, h.quantile(0.99));
        prop_assert_eq!(tail.p999, h.quantile(0.999));
    }

    #[test]
    fn histogram_merge_equals_combined(
        a in prop::collection::vec(1u64..1_000_000, 0..100),
        b in prop::collection::vec(1u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &x in &a { ha.record(SimDuration::from_nanos(x)); hall.record(SimDuration::from_nanos(x)); }
        for &x in &b { hb.record(SimDuration::from_nanos(x)); hall.record(SimDuration::from_nanos(x)); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.mean().as_nanos(), hall.mean().as_nanos());
        for qq in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(qq), hall.quantile(qq));
        }
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
        prop_assert_eq!(s.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn rng_gen_range_always_below_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_pmf_is_decreasing_and_normalized(n in 1usize..200, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let p = z.pmf(i);
            prop_assert!(p <= prev + 1e-12, "pmf not decreasing at {i}");
            prop_assert!(p >= 0.0);
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range(seed in any::<u64>(), n in 1usize..500) {
        let z = Zipf::new(n, 0.99);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
